"""Exception hierarchy for the HPC+QC integration stack.

Every layer of the stack raises a subclass of :class:`ReproError` so that
callers can catch errors at the granularity they care about: a scheduler
can catch :class:`DeviceError` from the QPU layer without accidentally
swallowing programming errors, and the REST middleware can map each
family onto an HTTP-style status code.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


# ---------------------------------------------------------------------------
# Circuit / IR layer
# ---------------------------------------------------------------------------


class CircuitError(ReproError):
    """Invalid circuit construction or manipulation."""


class GateError(CircuitError):
    """Unknown gate, wrong arity, or malformed gate parameters."""


class ParameterError(CircuitError):
    """Unbound or wrongly-bound symbolic circuit parameters."""


class SerializationError(CircuitError):
    """Circuit (de)serialization failure."""


# ---------------------------------------------------------------------------
# Simulation layer
# ---------------------------------------------------------------------------


class SimulationError(ReproError):
    """State-vector engine failure (dimension mismatch, bad channel, ...)."""


class NoiseModelError(SimulationError):
    """Malformed noise channel (non-CPTP Kraus set, bad probability)."""


class EngineModeError(SimulationError, ValueError):
    """Unknown or conflicting simulation-engine mode selection.

    Doubles as a :class:`ValueError` so callers validating configuration
    strings can catch it without importing the simulation layer.
    """


class ResourceAdmissionError(SimulationError):
    """A request was rejected by pre-flight admission control.

    Raised by :func:`repro.simulator.resilience.check_admission` **before
    any state allocation** when an engine's estimated peak memory exceeds
    the active budget (``engine_mode(max_state_bytes=...)``), instead of
    letting the allocation fail (or the OOM killer strike) mid-run.
    Structured so service layers can report and degrade: the offending
    engine, the estimate, the budget, and the circuit width all ride on
    the exception.
    """

    def __init__(
        self,
        message: str,
        *,
        engine: str = "",
        requested_bytes: int = 0,
        budget_bytes: int = 0,
        num_qubits: int = 0,
    ) -> None:
        super().__init__(message)
        self.engine = str(engine)
        self.requested_bytes = int(requested_bytes)
        self.budget_bytes = int(budget_bytes)
        self.num_qubits = int(num_qubits)


class FaultInjected(ReproError):
    """An artificial failure raised by the deterministic fault-injection
    harness (:mod:`repro.testing.faults`).  Never raised in production:
    it exists so recovery tests can tell an injected fault apart from a
    real defect."""


# ---------------------------------------------------------------------------
# Device / QPU layer
# ---------------------------------------------------------------------------


class DeviceError(ReproError):
    """QPU device-model failure."""


class TopologyError(DeviceError):
    """Operation applied to a qubit pair without a coupler, or bad index."""


class CalibrationError(DeviceError):
    """Calibration routine failure or use of a stale/absent calibration."""


class DeviceUnavailableError(DeviceError):
    """Device is offline (warming up, in maintenance, or calibrating)."""


# ---------------------------------------------------------------------------
# Compiler layer
# ---------------------------------------------------------------------------


class CompilerError(ReproError):
    """Generic compiler failure."""


class DialectError(CompilerError):
    """Unknown dialect or operation not legal in the given dialect."""


class LoweringError(CompilerError):
    """A lowering pass could not make progress."""


class TranspilationError(CompilerError):
    """Routing / placement / decomposition failure."""


# ---------------------------------------------------------------------------
# QDMI layer
# ---------------------------------------------------------------------------


class QDMIError(ReproError):
    """Device-management-interface failure."""


class PropertyNotSupportedError(QDMIError):
    """The queried QDMI property is not supported by the device."""


class SessionError(QDMIError):
    """QDMI session misuse (closed session, double-open, ...)."""


# ---------------------------------------------------------------------------
# Telemetry layer
# ---------------------------------------------------------------------------


class TelemetryError(ReproError):
    """Telemetry store or collector failure."""


class SensorError(TelemetryError):
    """A sensor plugin produced invalid data."""


# ---------------------------------------------------------------------------
# Scheduler layer
# ---------------------------------------------------------------------------


class SchedulerError(ReproError):
    """Resource-manager failure."""


class JobError(SchedulerError):
    """Invalid job specification or illegal job-state transition."""


class ReservationError(SchedulerError):
    """Conflicting or malformed advance reservation."""


class QueueError(SchedulerError):
    """Queue policy failure."""


# ---------------------------------------------------------------------------
# Middleware layer
# ---------------------------------------------------------------------------


class MiddlewareError(ReproError):
    """MQSS-style client/server failure."""


class RoutingError(MiddlewareError):
    """The client could not determine an access path for a job."""


class RestApiError(MiddlewareError):
    """REST emulation failure; carries an HTTP-like status code."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = int(status)
        self.message = message


class JobTimeoutError(RestApiError):
    """A client-side wait on a job outlived its tick budget.

    Carries the job id and the last status the client observed, so a
    caller (or an operator reading a log line) can tell a stuck queue
    from a dead job without a second round-trip.
    """

    def __init__(self, job_id: int, last_status: str, max_ticks: int) -> None:
        super().__init__(
            504,
            f"job {job_id} did not finish in {max_ticks} ticks "
            f"(last status: {last_status})",
        )
        self.job_id = int(job_id)
        self.last_status = str(last_status)
        self.max_ticks = int(max_ticks)


class AdapterError(MiddlewareError):
    """A front-end adapter produced an untranslatable program."""


# ---------------------------------------------------------------------------
# Facility layer
# ---------------------------------------------------------------------------


class FacilityError(ReproError):
    """Facility-model failure."""


class SiteSurveyError(FacilityError):
    """Survey data missing or insufficient (e.g. < 25 h temperature log)."""


class CryostatError(FacilityError):
    """Illegal cryostat state transition."""


class OutageError(FacilityError):
    """Outage-injection or recovery-procedure failure."""
