#!/usr/bin/env python
"""Pulse-level access — the Section 4 power-user path.

"Some users needed pulse-level access, enabling them to move beyond
circuit-based programming and design hardware-specific control
sequences."

This example builds a Bell-pair *pulse schedule* by hand (π/2 drive
pulses, a coupler flux pulse, readout acquisitions), inspects its
timeline, executes it on the device, and then goes the other way:
lowers a compiled GHZ circuit back into its physical pulse timeline —
the compilation-transparency view users asked for.

Run: ``python examples/pulse_level.py``
"""

import math

from repro.circuits import ghz_circuit
from repro.qpu import QPUDevice
from repro.qpu.params import NOMINAL
from repro.qpu.pulse import (
    AcquirePulse,
    DrivePulse,
    FluxPulse,
    PulseSchedule,
    circuit_to_schedule,
    schedule_to_circuit,
)
from repro.transpiler import transpile


def main() -> None:
    device = QPUDevice(seed=99)
    d = NOMINAL["prx_duration"]

    # --- hand-built Bell sequence ---------------------------------------------
    sched = PulseSchedule("bell-by-hand")
    sched.append(DrivePulse(0, d, 0.5, phase=math.pi / 2))   # Ry(π/2) on q0
    sched.append(DrivePulse(1, d, 0.5, phase=math.pi / 2))   # Ry(π/2) on q1
    sched.append(FluxPulse((0, 1), NOMINAL["cz_duration"]))  # coupler CZ
    sched.append(DrivePulse(1, d, -0.5, phase=math.pi / 2))  # Ry(-π/2) on q1
    sched.append(AcquirePulse(0, NOMINAL["readout_duration"]))
    sched.append(AcquirePulse(1, NOMINAL["readout_duration"]))
    print(sched.draw())

    circuit = schedule_to_circuit(sched, 2)
    result = device.execute(circuit, shots=4000)
    probs = result.counts.probabilities()
    print(
        f"\nexecuted: P(00)={probs.get('00', 0):.3f} P(11)={probs.get('11', 0):.3f} "
        f"(correlated mass {probs.get('00', 0) + probs.get('11', 0):.3f})"
    )

    # --- the reverse view: compiled circuit → physical timeline ----------------
    snap = device.calibration()
    native = transpile(ghz_circuit(3), device.topology, snapshot=snap).circuit
    timeline = circuit_to_schedule(native, snap)
    print(f"\ncompiled GHZ-3 as the hardware will play it:")
    print(timeline.draw())
    print(
        f"\ntotal sequence duration {timeline.duration * 1e6:.2f} µs "
        f"(plus the {NOMINAL['reset_duration'] * 1e6:.0f} µs passive reset "
        "per shot that dominates Section 2.4's bandwidth estimate)"
    )


if __name__ == "__main__":
    main()
