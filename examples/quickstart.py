#!/usr/bin/env python
"""Quickstart: submit a GHZ circuit through the full MQSS-style stack.

Covers the minimal happy path of the integration:

1. bring up the 20-qubit device model,
2. wrap it in the QRM (second-level scheduler with JIT compilation),
3. talk to it through the MQSS client — once via the low-latency HPC
   path, once via the asynchronous REST path — and confirm both return
   the same histogram shape (Figure 2's core promise).

Run: ``python examples/quickstart.py``
"""

from repro import MQSSClient, QPUDevice, QuantumResourceManager
from repro.circuits import ghz_circuit


def main() -> None:
    device = QPUDevice(seed=7)
    qrm = QuantumResourceManager(device)

    print(f"device: {device}")
    print(f"topology:\n{device.topology.ascii_art()}\n")

    circuit = ghz_circuit(5)
    print(f"submitting {circuit!r}")

    hpc_client = MQSSClient(qrm, context="hpc")
    record = hpc_client.run_detailed(circuit, shots=2048)
    print(f"\n[HPC path] job {record.job_id} ran in {record.duration:.3f} s of QPU time")
    top = sorted(record.counts.items(), key=lambda kv: -kv[1])[:4]
    for bits, count in top:
        print(f"  {bits}: {count}")
    print(f"  GHZ fidelity estimate: {record.counts.ghz_fidelity_estimate():.3f}")

    rest_client = MQSSClient(qrm, context="remote")
    record2 = rest_client.run_detailed(circuit, shots=2048)
    print(f"\n[REST path] job {record2.job_id} via JSON queue")
    print(f"  GHZ fidelity estimate: {record2.counts.ghz_fidelity_estimate():.3f}")

    tvd = record.counts.total_variation_distance(record2.counts)
    print(f"\nboth paths agree: total variation distance = {tvd:.3f}")


if __name__ == "__main__":
    main()
