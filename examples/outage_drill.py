#!/usr/bin/env python
"""Outage drill: Section 3.5's recovery scenarios, with and without
redundant infrastructure (lesson 3).

Walks four faults through the cryostat thermal model:

* a 90-second cooling blip (stays below the 1 K calibration horizon),
* a 45-minute cooling-water overtemperature,
* a 6-hour power loss,
* a planned one-day maintenance window,

each under a redundant and a bare facility configuration, and prints the
recovery timeline and total QPU downtime for each.

Run: ``python examples/outage_drill.py``
"""

from repro.facility import (
    FacilityConfig,
    OutageScenario,
    OutageType,
    simulate_outage,
)
from repro.utils.units import DAY, HOUR, MINUTE

SCENARIOS = [
    OutageScenario(OutageType.COOLING_PUMP_FAILURE, 90.0, "90 s pump hiccup"),
    OutageScenario(
        OutageType.COOLING_WATER_OVERTEMP, 45 * MINUTE, "45 min water overtemp"
    ),
    OutageScenario(OutageType.POWER_LOSS, 6 * HOUR, "6 h grid outage"),
    OutageScenario(
        OutageType.PLANNED_MAINTENANCE, 8 * HOUR, "planned maintenance day"
    ),
]

CONFIGS = [
    ("redundant facility", FacilityConfig(ups_present=True, redundant_cooling=True)),
    ("bare facility", FacilityConfig(ups_present=False, redundant_cooling=False)),
]


def main() -> None:
    for scenario in SCENARIOS:
        print(f"\n=== {scenario.description or scenario.kind.value} ===")
        for label, config in CONFIGS:
            report = simulate_outage(scenario, config)
            print(f"\n[{label}]")
            print(report.summary())
    print(
        "\nLesson 3, quantified: the same minutes-long utility fault costs "
        "zero downtime with redundancy and multiple days without it — the "
        "cryostat cooldown (2-5 days) dominates every unprotected recovery."
    )


if __name__ == "__main__":
    main()
