#!/usr/bin/env python
"""Site selection: the Table 1 survey over three candidate rooms.

Reproduces the paper's Section 2.1 workflow: "The HPC center selected
three potential spaces … Then engineers went on site to measure the
environmental conditions in a site survey."  Each candidate gets a full
sensor recording (≥ 25 h for temperature/humidity) and is scored against
the Table 1 acceptance criteria; the passing room with the best margins
wins.

Run: ``python examples/site_selection.py``
"""

from repro.facility import SiteProfile, run_survey, select_site
from repro.facility.site_survey import DeliveryPath

CANDIDATES = [
    SiteProfile(
        "basement-annex",
        tram_distance=800.0,
        hvac_intensity=0.4,
        fluorescent_distance=4.0,
        basement=True,
    ),
    SiteProfile(
        "street-level-hall",
        tram_distance=45.0,       # tram line right outside
        road_traffic=1.2,
        hvac_intensity=0.6,
    ),
    SiteProfile(
        "machine-room-west",
        hvac_intensity=2.6,       # next to the chiller plant
        fluorescent_distance=1.2,  # closer than the 2 m limit
    ),
]

DELIVERY = DeliveryPath(
    {
        "loading dock": 2.40,
        "freight elevator": 1.10,
        "corridor B": 1.00,
        "lab door": 0.95,
    }
)


def main() -> None:
    reports = []
    for profile in CANDIDATES:
        report = run_survey(
            profile, rng=2026, delivery_path=DELIVERY, floor_load_capacity=1500.0
        )
        reports.append(report)
        print(report.as_table())
        print()
    winner, notes = select_site(reports)
    print("Selection notes:")
    for note in notes:
        print(f"  - {note}")
    if winner is None:
        print("\nNo candidate site satisfies Table 1 — survey more rooms.")
    else:
        print(f"\nSelected site: {winner.site}")


if __name__ == "__main__":
    main()
