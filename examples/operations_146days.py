#!/usr/bin/env python
"""The Figure 4 run: 146 days of autonomous calibrated operation.

Reproduces Section 3's operational story end-to-end: the device physics
drifts (including TLS defect captures), DCDB collects telemetry every
two hours, the recalibration advisor watches the fidelity medians, and
the controller runs quick/full calibrations inside nightly scheduler
windows — no human in the loop.

Prints the Figure 4 daily series (median single-qubit gate, readout, and
CZ fidelity) as a weekly table plus the operations summary.

Run: ``python examples/operations_146days.py [days]``
"""

import sys

import numpy as np

from repro.ops import OperationsConfig, OperationsSimulator
from repro.qpu import QPUDevice


def main() -> None:
    days = int(sys.argv[1]) if len(sys.argv) > 1 else 146
    print(f"running {days} days of autonomous operation…")
    device = QPUDevice(seed=2024)
    sim = OperationsSimulator(device, OperationsConfig(duration_days=days))
    result = sim.run()

    series = result.fig4_series()
    print("\nFigure 4 series (weekly medians):")
    print(f"{'day':>5} {'1q gate':>9} {'readout':>9} {'CZ':>9} {'cal (q/f)':>10} {'TLS':>4}")
    for d in result.days:
        if d.day % 7 == 0 or d.day == days - 1:
            print(
                f"{d.day:>5} {d.median_prx_fidelity:>9.5f} "
                f"{d.median_readout_fidelity:>9.5f} {d.median_cz_fidelity:>9.5f} "
                f"{d.calibrations_quick:>4}/{d.calibrations_full:<4} {d.tls_active:>4}"
            )

    summary = result.summary()
    print("\noperations summary:")
    for key, value in summary.items():
        print(f"  {key:28s} {value:.4f}")

    print(
        f"\npaper's claim check: {result.unattended_days()} days without "
        f"human calibration intervention (paper reports > 100); fidelity "
        f"bands 1q={series['prx_fidelity'].mean():.4f} "
        f"ro={series['readout_fidelity'].mean():.4f} "
        f"cz={series['cz_fidelity'].mean():.4f}"
    )


if __name__ == "__main__":
    main()
