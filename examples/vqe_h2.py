#!/usr/bin/env python
"""VQE for H₂ — the tightly-coupled hybrid workload of Section 2.6.

"The second mode involves treating the QPU as an accelerator in a
classical HPC workflow, allowing quantum operations to be executed
within a tightly-coupled, low-latency loop.  Such a model is essential
for hybrid quantum-classical algorithms such as the Variational Quantum
Eigensolver (VQE)."

This example runs the full loop on the noisy 20-qubit device model:
every SPSA iteration submits freshly-bound ansatz circuits through the
MQSS client (HPC path), and the JIT compiler re-places them whenever a
recalibration lands.  A noiseless reference run shows the hardware gap.

Run: ``python examples/vqe_h2.py``
"""

import numpy as np

from repro import MQSSClient, QPUDevice, QuantumResourceManager
from repro.hybrid import VQE, h2_hamiltonian
from repro.simulator import sample_counts


def main() -> None:
    ham = h2_hamiltonian(bond_length=0.735)
    exact = ham.exact_ground_energy()
    print(f"H2 Hamiltonian ({len(ham)} Pauli terms), exact ground energy {exact:.5f} Ha")

    # --- noiseless reference -------------------------------------------------
    rng = np.random.default_rng(0)
    ideal_runner = lambda qc, shots: sample_counts(qc, shots, rng=rng)
    ideal = VQE(ham, ideal_runner, shots=1500).minimize(
        optimizer="spsa", iterations=120, rng=1
    )
    print(
        f"\n[ideal simulator]  E = {ideal.energy:.5f} Ha "
        f"(error {ideal.error_to_exact * 1000:.1f} mHa, "
        f"{ideal.optimizer.evaluations} energy evaluations)"
    )

    # --- full stack on the noisy device ---------------------------------------
    device = QPUDevice(seed=11)
    client = MQSSClient(QuantumResourceManager(device), context="hpc")
    hw_runner = lambda qc, shots: client.run(qc, shots=shots)
    hw = VQE(ham, hw_runner, shots=600).minimize(
        optimizer="spsa", iterations=60, rng=2
    )
    print(
        f"[noisy 20q device] E = {hw.energy:.5f} Ha "
        f"(error {hw.error_to_exact * 1000:.1f} mHa)"
    )
    print(
        f"\nQPU time consumed: {device.busy_seconds:.1f} s over "
        f"{device.jobs_executed} jobs; "
        f"JIT cache: {client.qrm.jit.cache_info()}"
    )
    print(
        "hardware noise costs "
        f"{(hw.error_to_exact - ideal.error_to_exact) * 1000:.1f} mHa "
        "versus the ideal loop — the gap error mitigation (Section 4 "
        "training) exists to close."
    )


if __name__ == "__main__":
    main()
