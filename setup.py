"""Setup shim: enables legacy editable installs (``pip install -e . --no-use-pep517``)
on environments whose setuptools lacks the PEP 660 wheel hooks."""

from setuptools import setup

setup()
