"""Fault-tolerant execution: recovery, admission control, degradation.

Four contracts are pinned here, end to end:

1. **Crash recovery is bit-identical.**  The recovery matrix runs the
   sharded sampler under every fault shape (a killed worker, a poisoned
   block, a pool whose every worker dies, a missing shared-memory
   segment) at several worker counts and asserts the recovered counts
   equal an unfaulted ``workers=1`` run bit for bit — the block-stream
   contract (``child_rng(seed, "shard", i)``) makes this possible; the
   recovery driver makes it actual.
2. **Admission control rejects before allocation.**  An oversized dense
   request raises a structured ``ResourceAdmissionError`` without the
   engine ever being instantiated, and the budget is scoped via
   ``engine_mode(max_state_bytes=...)``.
3. **Degradation is recorded, not silent.**  ``run_with_fallback`` walks
   the declared ladder on admission failure and MPS truncation, and
   every hop lands on the result and in the resilience counters.
4. **The harness itself is deterministic** — firing budgets, ordinal
   matching, worker-only scoping — because the recovery suite is only
   as trustworthy as its fault injector.
"""

from __future__ import annotations

import time
from multiprocessing import shared_memory

import numpy as np
import pytest

from helpers.parity import assert_counts_identical, counts_under_mode, ghz_t
from repro.circuits import ghz_circuit
from repro.errors import (
    EngineModeError,
    FaultInjected,
    ResourceAdmissionError,
    SimulationError,
)
from repro.simulator import (
    FALLBACK_CHAINS,
    NoiseModel,
    depolarizing_error,
    engine_mode,
    resilience,
    run_with_fallback,
    sample_counts,
)
from repro.simulator import sharding
from repro.simulator.engines.dense import DenseEngine
from repro.simulator.resilience import (
    DEFAULT_MAX_STATE_BYTES,
    check_admission,
    estimate_resources,
)
from repro.simulator.sharding import SharedPrefix, sample_counts_sharded
from repro.testing import Fault, fault_point, inject_faults
from repro.testing import faults as faults_mod


@pytest.fixture(autouse=True)
def _fresh_counters():
    resilience.reset_counters()
    yield
    resilience.reset_counters()


@pytest.fixture
def fast_backoff(monkeypatch):
    """Zero the rebuild backoff so the recovery matrix stays fast."""
    monkeypatch.setattr(sharding, "REBUILD_BACKOFF_BASE", 0.0)


def cx_noise() -> NoiseModel:
    """Noise on ``cx`` only: the leading ``h`` stays clean, so the
    sharded driver publishes a shared prefix segment."""
    nm = NoiseModel()
    nm.add_gate_error(depolarizing_error(0.02, 2), "cx")
    return nm


# ---------------------------------------------------------------------------
# the recovery matrix (tentpole acceptance)
# ---------------------------------------------------------------------------

#: fault name -> factory for the specs the scenario arms.  Factories,
#: not instances: each armed plan needs fresh cross-process budgets.
FAULT_SPECS = {
    "worker-kill": lambda: (
        Fault("shard.block", action="kill", index=1, times=1, worker_only=True),
    ),
    "block-exception": lambda: (
        Fault("shard.block", action="raise", index=1, times=1, worker_only=True),
    ),
    "broken-pool": lambda: (
        Fault("shard.init", action="kill", times=None, worker_only=True),
    ),
    "shm-missing": lambda: (
        Fault("shard.attach", action="raise", times=None, worker_only=True),
    ),
}

_RECOVERY_SHOTS = 700  # three blocks: 256 + 256 + 188
_RECOVERY_SEED = 5

_clean_reference_cache = {}


def _clean_reference():
    """The unfaulted ``workers=1`` counts every scenario must reproduce
    (computed once; the matrix re-derives only the faulted side)."""
    if "counts" not in _clean_reference_cache:
        _clean_reference_cache["counts"] = sample_counts_sharded(
            ghz_t(6),
            _RECOVERY_SHOTS,
            noise=cx_noise(),
            seed=_RECOVERY_SEED,
            workers=1,
        )
    return _clean_reference_cache["counts"]


@pytest.mark.faults
class TestRecoveryMatrix:
    @pytest.mark.parametrize("fault_name", sorted(FAULT_SPECS))
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_recovered_counts_bit_identical(self, workers, fault_name, fast_backoff):
        with inject_faults(*FAULT_SPECS[fault_name]()):
            faulted = sample_counts_sharded(
                ghz_t(6),
                _RECOVERY_SHOTS,
                noise=cx_noise(),
                seed=_RECOVERY_SEED,
                workers=workers,
            )
        assert_counts_identical(
            _clean_reference(), faulted, context=(fault_name, workers)
        )

    def test_worker_kill_at_four_workers_is_acceptance_pin(self, fast_backoff):
        """The ISSUE's acceptance criterion, spelled out on its own:
        ``workers=4`` with one worker killed mid-run reproduces the
        unfaulted ``workers=1`` counts bit for bit."""
        with inject_faults(*FAULT_SPECS["worker-kill"]()):
            faulted = sample_counts_sharded(
                ghz_t(6),
                _RECOVERY_SHOTS,
                noise=cx_noise(),
                seed=_RECOVERY_SEED,
                workers=4,
            )
        assert_counts_identical(_clean_reference(), faulted, context="acceptance")

    def test_worker_kill_rebuilds_pool_once(self, fast_backoff):
        with inject_faults(*FAULT_SPECS["worker-kill"]()):
            sample_counts_sharded(
                ghz_t(6),
                _RECOVERY_SHOTS,
                noise=cx_noise(),
                seed=_RECOVERY_SEED,
                workers=4,
            )
        counters = resilience.counters()
        assert counters["retries"] >= 1
        assert counters["pool_rebuilds"] == 1
        assert counters["inline_fallbacks"] == 0

    def test_broken_pool_exhausts_rebuilds_then_runs_inline(self, fast_backoff):
        """Every worker dies in its initializer, twice over: the rebuild
        budget is spent and the stragglers run inline — yet counts are
        still bit-identical (asserted by the matrix above)."""
        with inject_faults(*FAULT_SPECS["broken-pool"]()):
            sample_counts_sharded(
                ghz_t(6),
                _RECOVERY_SHOTS,
                noise=cx_noise(),
                seed=_RECOVERY_SEED,
                workers=2,
            )
        counters = resilience.counters()
        assert counters["pool_rebuilds"] == sharding.MAX_POOL_REBUILDS
        assert counters["inline_fallbacks"] == 3  # every block fell inline

    def test_shm_missing_degrades_without_recovery_machinery(self, fast_backoff):
        """A worker that cannot attach the prefix segment recomputes the
        prefix itself — graceful degradation, not a pool failure, so no
        retries/rebuilds are recorded."""
        with inject_faults(*FAULT_SPECS["shm-missing"]()):
            sample_counts_sharded(
                ghz_t(6),
                _RECOVERY_SHOTS,
                noise=cx_noise(),
                seed=_RECOVERY_SEED,
                workers=2,
            )
        counters = resilience.counters()
        assert counters["retries"] == 0
        assert counters["pool_rebuilds"] == 0
        assert counters["inline_fallbacks"] == 0

    def test_block_timeout_abandons_pool_and_finishes_inline(self, fast_backoff):
        """A hung worker: the per-block timeout expires, the pool is
        abandoned (no rebuild — a hung pool cannot be trusted), and the
        remaining blocks run inline with identical counts."""
        with inject_faults(
            Fault(
                "shard.block",
                action="hang",
                index=0,
                times=1,
                worker_only=True,
                delay=5.0,
            )
        ):
            faulted = sample_counts_sharded(
                ghz_t(6),
                _RECOVERY_SHOTS,
                noise=cx_noise(),
                seed=_RECOVERY_SEED,
                workers=2,
                block_timeout=0.5,
            )
        assert_counts_identical(_clean_reference(), faulted, context="timeout")
        counters = resilience.counters()
        assert counters["inline_fallbacks"] >= 1
        assert counters["pool_rebuilds"] == 0

    def test_recovery_sweep(self, faults_deep, fast_backoff):
        """The seed sweep: deep mode widens it (``--faults-deep``)."""
        seeds = (11, 12, 13) if faults_deep else (11,)
        for seed in seeds:
            clean = sample_counts_sharded(
                ghz_t(5), 600, noise=cx_noise(), seed=seed, workers=1
            )
            for fault_name, spec in sorted(FAULT_SPECS.items()):
                with inject_faults(*spec()):
                    faulted = sample_counts_sharded(
                        ghz_t(5), 600, noise=cx_noise(), seed=seed, workers=4
                    )
                assert_counts_identical(clean, faulted, context=(fault_name, seed))


# ---------------------------------------------------------------------------
# shared-memory lifecycle (satellite: the leak window)
# ---------------------------------------------------------------------------


@pytest.mark.faults
class TestSharedPrefixLifecycle:
    def _assert_last_segment_unlinked(self):
        name = sharding._LAST_SEGMENT_NAME
        assert name is not None, "run never published a prefix segment"
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)

    def test_segment_unlinked_after_clean_run(self):
        sample_counts_sharded(
            ghz_t(5), 600, noise=cx_noise(), seed=3, workers=2
        )
        self._assert_last_segment_unlinked()

    def test_segment_unlinked_after_mid_run_fault(self, fast_backoff):
        """The leak window the context-managed owner closes: a fault
        between the pool run and the merge used to strand the segment."""
        with inject_faults(Fault("shard.merge", action="raise")):
            with pytest.raises(FaultInjected):
                sample_counts_sharded(
                    ghz_t(5), 600, noise=cx_noise(), seed=3, workers=2
                )
        self._assert_last_segment_unlinked()

    def test_close_is_idempotent(self):
        state = np.zeros(8, dtype=np.complex128)
        state[0] = 1.0
        prefix = SharedPrefix(state)
        prefix.close()
        prefix.close()  # second close must be a no-op, not a crash
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=prefix.name)

    def test_worker_attach_verifies_digest(self):
        """A corrupted segment degrades to recompute-per-block
        (``_WORKER_PREFIX = None``) instead of sampling from garbage."""
        state = np.zeros(8, dtype=np.complex128)
        state[0] = 1.0
        saved = (sharding._WORKER_PREFIX, sharding._WORKER_SHM)
        try:
            with SharedPrefix(state) as segment:
                shm = shared_memory.SharedMemory(name=segment.name)
                shm.buf[sharding._DIGEST_BYTES] ^= 0xFF  # tear the payload
                shm.close()
                sharding._init_worker(segment.name, 3, 1)
                assert sharding._WORKER_PREFIX is None
        finally:
            sharding._WORKER_PREFIX, sharding._WORKER_SHM = saved

    def test_worker_attach_accepts_intact_segment(self):
        state = np.arange(8, dtype=np.complex128)
        saved = (sharding._WORKER_PREFIX, sharding._WORKER_SHM)
        try:
            with SharedPrefix(state) as segment:
                sharding._init_worker(segment.name, 3, 4)
                assert sharding._WORKER_PREFIX is not None
                attached, position = sharding._WORKER_PREFIX
                assert position == 4
                np.testing.assert_array_equal(np.array(attached, copy=True), state)
                assert not attached.flags.writeable
        finally:
            # Drop the view before the handle so GC can close the
            # segment mapping (closing with a live export would raise).
            attached = None
            sharding._WORKER_PREFIX, sharding._WORKER_SHM = saved

    def test_worker_attach_degrades_on_missing_segment(self):
        saved = (sharding._WORKER_PREFIX, sharding._WORKER_SHM)
        try:
            sharding._init_worker("repro_no_such_segment", 3, 1)
            assert sharding._WORKER_PREFIX is None
        finally:
            sharding._WORKER_PREFIX, sharding._WORKER_SHM = saved


# ---------------------------------------------------------------------------
# admission control
# ---------------------------------------------------------------------------


class TestAdmissionControl:
    def test_oversize_dense_rejected_before_any_allocation(self, monkeypatch):
        """The ISSUE's second acceptance pin: a 30-qubit dense request
        (a ~48 GiB state) fails structurally — the engine is never even
        instantiated."""
        instantiated = []
        original = DenseEngine.__init__

        def tracking_init(self, *args, **kwargs):
            instantiated.append(True)
            return original(self, *args, **kwargs)

        monkeypatch.setattr(DenseEngine, "__init__", tracking_init)
        with engine_mode("fast"):
            with pytest.raises(ResourceAdmissionError) as excinfo:
                sample_counts(ghz_t(30), 16, rng=1)
        err = excinfo.value
        assert err.engine == "dense"
        assert err.num_qubits == 30
        assert err.requested_bytes == 3 * (16 << 30)
        assert err.budget_bytes == DEFAULT_MAX_STATE_BYTES
        assert err.requested_bytes > err.budget_bytes
        assert not instantiated, "admission must run before engine allocation"
        assert resilience.counters()["admission_rejects"] == 1

    def test_sharded_path_rejects_before_forking(self):
        with engine_mode("fast"):
            with pytest.raises(ResourceAdmissionError):
                sample_counts_sharded(ghz_t(30), 64, seed=1, workers=4)

    def test_expectation_path_rejects_too(self):
        from repro.simulator.engines import prepare_engine

        with engine_mode("fast"):
            with pytest.raises(ResourceAdmissionError):
                prepare_engine(ghz_t(30))

    def test_historical_widths_admit_everywhere(self):
        """The default budget is calibrated so every width the stack
        could already serve still admits — 26-qubit dense exactly."""
        qc = ghz_t(4)
        for mode in ("fast", "batched", "stabilizer", "hybrid", "mps", "auto"):
            estimate = check_admission(qc, mode)
            assert estimate.peak_bytes is not None
            assert estimate.peak_bytes <= DEFAULT_MAX_STATE_BYTES

    def test_wide_clifford_routes_past_the_dense_gate(self):
        """A 50-qubit Clifford circuit under ``stabilizer`` lands on the
        tableau, whose polynomial footprint admits trivially."""
        qc = ghz_circuit(50, measure=True)
        estimate = check_admission(qc, "stabilizer")
        assert estimate.engine == "tableau"
        assert estimate.peak_bytes == 2 * (4 * 50 * 50 + 2 * 50)

    def test_estimate_formulas(self):
        qc = ghz_t(10)
        from repro.simulator.engines import mps as mps_mod
        from repro.simulator.sampler import BATCH_MAX_BYTES

        dense = estimate_resources(qc, "fast")
        assert dense.engine == "dense"
        assert dense.peak_bytes == 3 * (16 << 10)
        batched = estimate_resources(qc, "batched")
        assert batched.peak_bytes == dense.peak_bytes + int(BATCH_MAX_BYTES)
        mps = estimate_resources(qc, "mps")
        assert mps.peak_bytes == 2 * 10 * (2 * mps_mod.CHI * mps_mod.CHI * 16)

    def test_engine_without_estimate_admits_unconditionally(self):
        silent = type(
            "SilentEngine",
            (),
            {"name": "silent", "estimate_peak_bytes": classmethod(lambda cls, c: None)},
        )
        estimate = check_admission(ghz_t(30), "fast", engine_cls=silent)
        assert estimate.peak_bytes is None
        assert resilience.counters()["admission_rejects"] == 0

    def test_baseline_mode_is_exempt(self):
        """The seed path must behave exactly as seeded: no admission
        gate, so a request the budget would reject still routes (the
        30-qubit allocation itself would fail, but only at allocation
        time — exactly the seed's behaviour)."""
        qc = ghz_t(4)
        with engine_mode("baseline"), inject_faults(
            Fault("resilience.admission", times=None)
        ):
            counts = sample_counts(qc, 32, rng=7)
        assert counts.shots == 32


class TestMaxStateBytesFacade:
    def test_budget_tightens_and_restores(self):
        qc = ghz_t(4)
        with engine_mode("fast", max_state_bytes=1):
            assert resilience.MAX_STATE_BYTES == 1
            with pytest.raises(ResourceAdmissionError) as excinfo:
                sample_counts(qc, 16, rng=1)
            assert excinfo.value.budget_bytes == 1
        assert resilience.MAX_STATE_BYTES == DEFAULT_MAX_STATE_BYTES
        counts = sample_counts(qc, 16, rng=1)  # admits again after restore
        assert counts.shots == 16

    def test_budget_restores_after_exception(self):
        with pytest.raises(RuntimeError):
            with engine_mode("fast", max_state_bytes=64):
                raise RuntimeError("boom")
        assert resilience.MAX_STATE_BYTES == DEFAULT_MAX_STATE_BYTES

    def test_budget_rejected_under_baseline(self):
        with pytest.raises(EngineModeError, match="max_state_bytes"):
            with engine_mode("baseline", max_state_bytes=1024):
                pass

    @pytest.mark.parametrize("bad", [0, -1, True, 2.5])
    def test_budget_validates_value(self, bad):
        with pytest.raises(EngineModeError, match="max_state_bytes"):
            with engine_mode("fast", max_state_bytes=bad):
                pass

    def test_failed_validation_leaves_budget_untouched(self):
        before = resilience.MAX_STATE_BYTES
        with pytest.raises(EngineModeError):
            with engine_mode("fast", max_state_bytes=0):
                pass
        assert resilience.MAX_STATE_BYTES == before


# ---------------------------------------------------------------------------
# the graceful-degradation ladder
# ---------------------------------------------------------------------------


class TestFallbackLadder:
    def test_no_degradation_records_no_hops(self):
        qc = ghz_t(4)
        result = run_with_fallback(qc, 64, seed=3, mode="fast")
        assert result.mode == "fast"
        assert result.hops == ()
        assert_counts_identical(
            result.counts, counts_under_mode(qc, "fast", 3, shots=64)
        )
        assert resilience.counters()["engine_fallbacks"] == 0

    def test_oversize_dense_degrades_to_mps(self):
        """30 qubits under ``fast``: dense fails admission, the ladder
        hops to the bounded-memory MPS, and the request completes."""
        result = run_with_fallback(ghz_t(30), 64, seed=3, mode="fast")
        assert result.mode == "mps"
        assert len(result.hops) == 1
        hop = result.hops[0]
        assert (hop.from_mode, hop.to_mode) == ("fast", "mps")
        assert hop.reason.startswith("admission:")
        assert result.counts.shots == 64
        assert resilience.counters()["engine_fallbacks"] == 1
        assert resilience.counters()["admission_rejects"] == 1

    def test_truncated_mps_escalates_to_exact_engine(self):
        """ROADMAP item 5's auto-escalation: an MPS whose bond cap
        truncates (chi=1 cannot hold a GHZ state) discards its lossy
        counts and escalates to an exact mode."""
        qc = ghz_t(6)
        with engine_mode("mps", chi=1):
            result = run_with_fallback(qc, 64, seed=3)
        assert result.mode == "hybrid"
        assert len(result.hops) == 1
        assert result.hops[0].reason.startswith("truncation:")
        assert_counts_identical(
            result.counts, counts_under_mode(qc, "hybrid", 3, shots=64)
        )
        assert resilience.counters()["engine_fallbacks"] == 1

    def test_exhausted_chain_propagates_admission_error(self):
        with engine_mode("fast", max_state_bytes=1):
            with pytest.raises(ResourceAdmissionError):
                run_with_fallback(ghz_t(4), 16, seed=1, mode="fast")
        # every chain step burned one hop except the last, which raised
        assert resilience.counters()["engine_fallbacks"] == len(
            FALLBACK_CHAINS["fast"]
        )

    def test_live_generator_seed_rejected(self):
        with pytest.raises(SimulationError, match="int seed or None"):
            run_with_fallback(
                ghz_t(4), 16, seed=np.random.default_rng(1), mode="fast"
            )

    def test_unrelated_warnings_survive_the_recording_context(self, monkeypatch):
        """The ladder records warnings to spot truncation; everything
        else must be replayed, not swallowed."""
        import warnings as _warnings

        from repro.simulator import sampler as sampler_mod

        qc = ghz_t(4)
        original = sampler_mod.sample_counts

        def warning_sample(*args, **kwargs):
            _warnings.warn("probe escaped")
            return original(*args, **kwargs)

        monkeypatch.setattr(sampler_mod, "sample_counts", warning_sample)
        with pytest.warns(UserWarning, match="probe escaped"):
            run_with_fallback(qc, 8, seed=1, mode="fast")

    def test_chains_are_declared_data(self):
        """The ladder is data, pinned: operators read it from the
        module, docs quote it, tests freeze it."""
        assert FALLBACK_CHAINS == {
            "fast": ("mps",),
            "batched": ("fast", "mps"),
            "stabilizer": ("fast", "mps"),
            "hybrid": ("mps",),
            "mps": ("hybrid", "fast"),
            "auto": ("mps", "hybrid"),
        }
        assert "baseline" not in FALLBACK_CHAINS


# ---------------------------------------------------------------------------
# resilience counters & telemetry surface
# ---------------------------------------------------------------------------


class TestCounters:
    def test_count_and_reset(self):
        resilience.count_event("retries")
        resilience.count_event("retries", 2)
        resilience.count_event("engine_fallbacks")
        snapshot = resilience.counters()
        assert snapshot["retries"] == 3
        assert snapshot["engine_fallbacks"] == 1
        assert snapshot["pool_rebuilds"] == 0
        resilience.reset_counters()
        assert all(v == 0 for v in resilience.counters().values())

    def test_snapshot_is_a_copy(self):
        snapshot = resilience.counters()
        snapshot["retries"] = 999
        assert resilience.counters()["retries"] == 0

    def test_counter_names_match_sensor_contract(self):
        assert resilience.COUNTER_NAMES == (
            "retries",
            "pool_rebuilds",
            "inline_fallbacks",
            "admission_rejects",
            "engine_fallbacks",
        )


# ---------------------------------------------------------------------------
# the fault harness itself
# ---------------------------------------------------------------------------


class TestFaultHarness:
    def test_unknown_action_rejected_at_construction(self):
        with pytest.raises(ValueError, match="unknown fault action"):
            Fault("p", action="explode")

    def test_disarmed_points_are_free(self):
        assert faults_mod.ACTIVE is None
        fault_point("anything")  # no plan armed: must be a no-op

    def test_times_budget_limits_firings(self):
        with inject_faults(Fault("p", times=2, index=None)):
            with pytest.raises(FaultInjected):
                fault_point("p")
            with pytest.raises(FaultInjected):
                fault_point("p")
            fault_point("p")  # budget spent: silent

    def test_unlimited_budget(self):
        with inject_faults(Fault("p", times=None)):
            for _ in range(5):
                with pytest.raises(FaultInjected):
                    fault_point("p")

    def test_point_name_must_match(self):
        with inject_faults(Fault("p")):
            fault_point("q")
            with pytest.raises(FaultInjected):
                fault_point("p")

    def test_explicit_context_index(self):
        with inject_faults(Fault("p", index=3, times=None)):
            fault_point("p", 1)
            fault_point("p", 2)
            with pytest.raises(FaultInjected):
                fault_point("p", 3)

    def test_ordinal_matching_without_context_index(self):
        """Points with no natural index match the 1-based call ordinal:
        'fail the 2nd call'."""
        with inject_faults(Fault("p", index=2)):
            fault_point("p")  # 1st call: no fire
            with pytest.raises(FaultInjected):
                fault_point("p")  # 2nd call: fires

    def test_worker_only_never_fires_in_parent(self):
        with inject_faults(Fault("p", worker_only=True, times=None)):
            fault_point("p")  # this test runs in the parent process

    def test_hang_action_sleeps_then_returns(self):
        start = time.monotonic()
        with inject_faults(Fault("p", action="hang", delay=0.05)):
            fault_point("p")
        assert time.monotonic() - start >= 0.05

    def test_plans_nest_and_restore(self):
        with inject_faults(Fault("outer")) as outer:
            assert faults_mod.ACTIVE is outer
            with inject_faults(Fault("inner")) as inner:
                assert faults_mod.ACTIVE is inner
                fault_point("outer")  # outer plan is shadowed
            assert faults_mod.ACTIVE is outer
        assert faults_mod.ACTIVE is None

    def test_plan_restored_after_exception(self):
        with pytest.raises(RuntimeError):
            with inject_faults(Fault("p")):
                raise RuntimeError("boom")
        assert faults_mod.ACTIVE is None

    def test_injected_error_is_distinguishable(self):
        """FaultInjected is its own type so recovery tests can tell an
        injected failure from a genuine defect."""
        from repro.errors import ReproError

        assert issubclass(FaultInjected, ReproError)
        assert not issubclass(FaultInjected, SimulationError)

    def test_arming_resets_budgets(self):
        fault_spec = Fault("p", times=1)
        with inject_faults(fault_spec):
            with pytest.raises(FaultInjected):
                fault_point("p")
        with inject_faults(fault_spec):  # re-armed: budget is fresh
            with pytest.raises(FaultInjected):
                fault_point("p")

    def test_non_sharded_sampler_has_injection_points(self):
        """``engine.span`` sits inside the grouped walk, so even the
        single-process sampler is fault-drivable."""
        with inject_faults(Fault("engine.span", index=0, times=1)):
            with pytest.raises(FaultInjected):
                sample_counts(ghz_t(4), 64, noise=cx_noise(), rng=1)

    def test_admission_check_has_injection_point(self):
        with inject_faults(Fault("resilience.admission")):
            with pytest.raises(FaultInjected):
                check_admission(ghz_t(4), "fast")
