"""Tests for the Counts histogram type."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.simulator.counts import Counts


class TestConstruction:
    def test_from_dict(self):
        c = Counts({"00": 30, "11": 70})
        assert c.shots == 100
        assert c["11"] == 70
        assert c["01"] == 0  # absent keys read as zero

    def test_inconsistent_widths_rejected(self):
        with pytest.raises(SimulationError):
            Counts({"0": 1, "00": 2})

    def test_invalid_characters_rejected(self):
        with pytest.raises(SimulationError):
            Counts({"0x": 1})

    def test_negative_rejected(self):
        with pytest.raises(SimulationError):
            Counts({"0": -1})

    def test_empty_needs_width(self):
        with pytest.raises(SimulationError):
            Counts({})
        c = Counts({}, num_bits=3)
        assert c.shots == 0

    def test_zero_entries_dropped(self):
        c = Counts({"00": 0, "11": 5})
        assert "00" not in c

    def test_from_bit_array(self):
        bits = np.array([[0, 1], [0, 1], [1, 0]], dtype=np.uint8)
        c = Counts.from_bit_array(bits)
        # column 0 = bit 0 (rightmost); [0,1] → "10"
        assert c["10"] == 2
        assert c["01"] == 1

    def test_from_bit_array_wrong_ndim(self):
        with pytest.raises(SimulationError):
            Counts.from_bit_array(np.zeros(4, dtype=np.uint8))

    def test_from_probabilities(self):
        c = Counts.from_probabilities({"0": 0.25, "1": 0.75}, shots=400)
        assert c["1"] == 300


class TestStatistics:
    def test_probabilities_sum_to_one(self):
        c = Counts({"00": 1, "01": 2, "10": 3, "11": 4})
        assert sum(c.probabilities().values()) == pytest.approx(1.0)

    def test_most_frequent(self):
        assert Counts({"00": 5, "11": 9}).most_frequent() == "11"

    def test_most_frequent_empty_raises(self):
        with pytest.raises(SimulationError):
            Counts({}, num_bits=2).most_frequent()

    def test_bit_value_little_endian(self):
        c = Counts({"10": 1})
        assert c.bit_value("10", 0) == 0
        assert c.bit_value("10", 1) == 1


class TestTransformations:
    def test_marginal(self):
        c = Counts({"011": 4, "110": 6})
        m = c.marginal([0, 2])  # new bit0 = old bit0, new bit1 = old bit2
        assert m["01"] == 4  # "011": bit0=1 bit2=0 → "01"
        assert m["10"] == 6  # "110": bit0=0 bit2=1 → "10"

    def test_marginal_out_of_range(self):
        with pytest.raises(SimulationError):
            Counts({"00": 1}).marginal([2])

    def test_merged(self):
        a = Counts({"0": 5})
        b = Counts({"0": 3, "1": 2})
        m = a.merged(b)
        assert m["0"] == 8 and m.shots == 10

    def test_merged_width_mismatch(self):
        with pytest.raises(SimulationError):
            Counts({"0": 1}).merged(Counts({"00": 1}))

    def test_add_operator_is_merged(self):
        a = Counts({"01": 5, "10": 1})
        b = Counts({"01": 3, "11": 2})
        s = a + b
        assert s.to_dict() == {"01": 8, "10": 1, "11": 2}
        assert s.shots == a.shots + b.shots

    def test_add_non_counts_is_not_implemented(self):
        with pytest.raises(TypeError):
            Counts({"0": 1}) + {"0": 1}

    def test_merge_many_parts(self):
        parts = [Counts({"00": 2}), Counts({"00": 1, "11": 4}), Counts({"01": 3})]
        m = Counts.merge(parts)
        assert m.to_dict() == {"00": 3, "11": 4, "01": 3}
        assert m.shots == sum(p.shots for p in parts)
        # one part passes through unchanged
        assert Counts.merge([parts[1]]).to_dict() == parts[1].to_dict()

    def test_merge_matches_fold_of_merged(self):
        parts = [Counts({"0": i + 1, "1": 2 * i}) for i in range(5)]
        folded = parts[0]
        for p in parts[1:]:
            folded = folded.merged(p)
        assert Counts.merge(parts).to_dict() == folded.to_dict()

    def test_merge_rejects_empty_and_mixed(self):
        with pytest.raises(SimulationError):
            Counts.merge([])
        with pytest.raises(SimulationError):
            Counts.merge([Counts({"0": 1}), Counts({"00": 1})])
        with pytest.raises(SimulationError):
            Counts.merge([Counts({"0": 1}), {"0": 1}])


class TestDistances:
    def test_tvd_identical_zero(self):
        c = Counts({"00": 10, "11": 10})
        assert c.total_variation_distance(c) == pytest.approx(0.0)

    def test_tvd_disjoint_one(self):
        a, b = Counts({"00": 10}), Counts({"11": 10})
        assert a.total_variation_distance(b) == pytest.approx(1.0)

    def test_hellinger_identical_one(self):
        c = Counts({"00": 3, "11": 7})
        assert c.hellinger_fidelity(c) == pytest.approx(1.0)

    def test_hellinger_disjoint_zero(self):
        assert Counts({"0": 5}).hellinger_fidelity(Counts({"1": 5})) == 0.0

    @given(
        st.dictionaries(
            st.sampled_from(["00", "01", "10", "11"]),
            st.integers(1, 100),
            min_size=1,
        ),
        st.dictionaries(
            st.sampled_from(["00", "01", "10", "11"]),
            st.integers(1, 100),
            min_size=1,
        ),
    )
    @settings(max_examples=50, deadline=None)
    def test_tvd_is_metric_like(self, d1, d2):
        a, b = Counts(d1), Counts(d2)
        tvd = a.total_variation_distance(b)
        assert 0.0 <= tvd <= 1.0 + 1e-12
        assert tvd == pytest.approx(b.total_variation_distance(a))


class TestObservables:
    def test_expectation_z_all_zeros(self):
        assert Counts({"000": 10}).expectation_z() == pytest.approx(1.0)

    def test_expectation_z_single_one(self):
        assert Counts({"001": 10}).expectation_z() == pytest.approx(-1.0)

    def test_expectation_z_subset(self):
        c = Counts({"01": 10})  # bit0=1, bit1=0
        assert c.expectation_z([0]) == pytest.approx(-1.0)
        assert c.expectation_z([1]) == pytest.approx(1.0)

    def test_expectation_z_mixed(self):
        c = Counts({"0": 75, "1": 25})
        assert c.expectation_z() == pytest.approx(0.5)

    def test_ghz_fidelity_estimate(self):
        c = Counts({"000": 45, "111": 45, "010": 10})
        assert c.ghz_fidelity_estimate() == pytest.approx(0.9)

    def test_expectation_empty_raises(self):
        with pytest.raises(SimulationError):
            Counts({}, num_bits=1).expectation_z()
