"""Tests for exact Kraus channels and the Pauli-twirl bridge."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import NoiseModelError
from repro.simulator.channels import (
    KrausChannel,
    amplitude_damping_channel,
    bit_flip_channel,
    depolarizing_channel,
    identity_channel,
    pauli_channel,
    phase_damping_channel,
    phase_flip_channel,
    thermal_relaxation_kraus,
    thermal_relaxation_twirl,
)


class TestKrausChannel:
    def test_cptp_validation_rejects_bad_set(self):
        k = np.array([[1, 0], [0, 0.5]], dtype=complex)
        with pytest.raises(NoiseModelError):
            KrausChannel((k,))

    def test_empty_rejected(self):
        with pytest.raises(NoiseModelError):
            KrausChannel(())

    def test_identity_channel_preserves_rho(self):
        rho = np.array([[0.7, 0.2j], [-0.2j, 0.3]], dtype=complex)
        out = identity_channel().apply_to_density(rho)
        np.testing.assert_allclose(out, rho)

    def test_trace_preserved_by_all_standard_channels(self):
        rho = np.array([[0.6, 0.1 + 0.2j], [0.1 - 0.2j, 0.4]], dtype=complex)
        for ch in (
            bit_flip_channel(0.3),
            phase_flip_channel(0.2),
            depolarizing_channel(0.25),
            amplitude_damping_channel(0.4),
            phase_damping_channel(0.15),
            thermal_relaxation_kraus(40e-6, 30e-6, 1e-6),
        ):
            out = ch.apply_to_density(rho)
            assert np.trace(out).real == pytest.approx(1.0, abs=1e-10)

    def test_compose_order(self):
        """AD then complete phase damping: coherence fully killed."""
        ad = amplitude_damping_channel(0.5)
        pd = phase_damping_channel(1.0)
        combined = ad.compose(pd)
        rho = 0.5 * np.ones((2, 2), dtype=complex)
        out = combined.apply_to_density(rho)
        assert abs(out[0, 1]) < 1e-12

    def test_average_gate_fidelity_depolarizing(self):
        """F̄ = 1 − 2p/3 for our single-qubit depolarizing convention:
        only the √(1−p)·I Kraus operator has nonzero trace, so
        F̄ = (4(1−p) + 2) / 6."""
        p = 0.12
        ch = depolarizing_channel(p)
        assert ch.average_gate_fidelity() == pytest.approx(1.0 - 2.0 * p / 3.0, abs=1e-12)

    def test_process_fidelity_identity(self):
        assert identity_channel().process_fidelity() == pytest.approx(1.0)

    def test_num_qubits(self):
        assert depolarizing_channel(0.1, 2).num_qubits == 2


class TestStandardChannels:
    def test_bit_flip_action(self):
        rho = np.array([[1, 0], [0, 0]], dtype=complex)
        out = bit_flip_channel(0.25).apply_to_density(rho)
        assert out[1, 1].real == pytest.approx(0.25)

    def test_phase_flip_kills_coherence(self):
        rho = 0.5 * np.ones((2, 2), dtype=complex)
        out = phase_flip_channel(0.5).apply_to_density(rho)
        assert abs(out[0, 1]) < 1e-12

    def test_amplitude_damping_population(self):
        rho = np.array([[0, 0], [0, 1]], dtype=complex)
        out = amplitude_damping_channel(0.3).apply_to_density(rho)
        assert out[0, 0].real == pytest.approx(0.3)
        assert out[1, 1].real == pytest.approx(0.7)

    def test_pauli_channel_prob_sum_validated(self):
        with pytest.raises(NoiseModelError):
            pauli_channel([("X", 0.7), ("Z", 0.5)])

    def test_pauli_channel_label_width(self):
        with pytest.raises(NoiseModelError):
            pauli_channel([("XX", 0.1)], num_qubits=1)

    def test_two_qubit_depolarizing_uniform(self):
        ch = depolarizing_channel(0.15, 2)
        assert len(ch.operators) == 16  # identity + 15 Paulis


class TestThermalRelaxation:
    def test_population_decay_rate(self):
        t1, t = 40e-6, 10e-6
        ch = thermal_relaxation_kraus(t1, t1, t)
        rho = np.array([[0, 0], [0, 1]], dtype=complex)
        out = ch.apply_to_density(rho)
        assert out[1, 1].real == pytest.approx(math.exp(-t / t1), abs=1e-9)

    def test_coherence_decay_rate(self):
        t1, t2, t = 40e-6, 25e-6, 5e-6
        ch = thermal_relaxation_kraus(t1, t2, t)
        rho = 0.5 * np.ones((2, 2), dtype=complex)
        out = ch.apply_to_density(rho)
        assert abs(out[0, 1]) == pytest.approx(0.5 * math.exp(-t / t2), abs=1e-9)

    def test_unphysical_t2_rejected(self):
        with pytest.raises(NoiseModelError):
            thermal_relaxation_kraus(10e-6, 25e-6, 1e-6)

    def test_zero_duration_is_identity(self):
        ch = thermal_relaxation_kraus(40e-6, 30e-6, 0.0)
        rho = np.array([[0.5, 0.4], [0.4, 0.5]], dtype=complex)
        np.testing.assert_allclose(ch.apply_to_density(rho), rho, atol=1e-12)

    @given(
        st.floats(10e-6, 100e-6),
        st.floats(0.2, 1.0),
        st.floats(1e-7, 20e-6),
    )
    @settings(max_examples=40, deadline=None)
    def test_twirl_matches_exact_diagonals(self, t1, t2_ratio, duration):
        """The Pauli/reset twirl reproduces the exact channel's
        populations AND coherence envelope (both decay factors)."""
        t2 = t2_ratio * t1
        exact = thermal_relaxation_kraus(t1, t2, duration)
        events = dict(thermal_relaxation_twirl(t1, t2, duration))
        p_reset = events.get("reset", 0.0)
        p_z = events.get("Z", 0.0)
        # populations: |1⟩ survives with 1 - p_reset
        rho1 = np.array([[0, 0], [0, 1]], dtype=complex)
        exact_pop = exact.apply_to_density(rho1)[1, 1].real
        assert 1.0 - p_reset == pytest.approx(exact_pop, abs=1e-9)
        # coherence: factor (1 - p_reset - 2 p_z) ≈ e^{-t/T2}
        rho_plus = 0.5 * np.ones((2, 2), dtype=complex)
        exact_coh = abs(exact.apply_to_density(rho_plus)[0, 1])
        twirl_coh = 0.5 * (1.0 - p_reset - 2.0 * p_z)
        assert twirl_coh == pytest.approx(exact_coh, abs=1e-9)

    def test_twirl_clamps_t2_above_t1(self):
        events = dict(thermal_relaxation_twirl(10e-6, 18e-6, 1e-6))
        assert events["Z"] >= 0.0
