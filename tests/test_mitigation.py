"""Tests for measurement-error mitigation and zero-noise extrapolation."""

import numpy as np
import pytest

from repro.circuits import QuantumCircuit, ghz_circuit
from repro.errors import ReproError
from repro.hybrid.mitigation import (
    ReadoutCalibration,
    calibrate_readout,
    fold_circuit,
    mitigate_counts,
    mitigated_expectation_z,
    zne_expectation,
)
from repro.simulator import (
    NoiseModel,
    ReadoutError,
    depolarizing_error,
    sample_counts,
)


def noisy_runner(readout=(0.04, 0.08), gate_p=0.0, seed=0):
    """Executor with known readout confusion (and optional gate noise)."""
    nm = NoiseModel()
    rng = np.random.default_rng(seed)

    def run(qc, shots):
        local = NoiseModel()
        for q in range(qc.num_qubits):
            local.add_readout_error(ReadoutError(*readout), q)
        if gate_p:
            local.add_gate_error(depolarizing_error(gate_p, 2), "cx")
            local.add_gate_error(depolarizing_error(gate_p, 2), "cz")
        return sample_counts(qc, shots, noise=local, rng=rng)

    return run


class TestCalibration:
    def test_recovers_confusion_rates(self):
        run = noisy_runner(readout=(0.05, 0.10))
        cal = calibrate_readout(run, 3, shots=40_000)
        for m in cal.matrices:
            assert m[1, 0] == pytest.approx(0.05, abs=0.01)  # P(1|0)
            assert m[0, 1] == pytest.approx(0.10, abs=0.01)  # P(0|1)

    def test_assignment_fidelity(self):
        cal = ReadoutCalibration(
            (np.array([[0.95, 0.10], [0.05, 0.90]]),)
        )
        assert cal.mean_assignment_fidelity() == pytest.approx(0.925)

    def test_needs_positive_qubits(self):
        with pytest.raises(ReproError):
            calibrate_readout(noisy_runner(), 0)


class TestMitigation:
    def test_mitigation_restores_ghz_fidelity(self):
        """Readout-corrupted GHZ: mitigation recovers most of the lost
        population fidelity."""
        run = noisy_runner(readout=(0.06, 0.09), seed=1)
        cal = calibrate_readout(run, 3, shots=30_000)
        counts = run(ghz_circuit(3), 30_000)
        raw_fid = counts.ghz_fidelity_estimate()
        table = mitigate_counts(counts, cal)
        mit_fid = table.get("000", 0.0) + table.get("111", 0.0)
        assert mit_fid > raw_fid + 0.05
        assert mit_fid == pytest.approx(1.0, abs=0.04)

    def test_mitigated_table_is_distribution(self):
        run = noisy_runner(seed=2)
        cal = calibrate_readout(run, 2, shots=20_000)
        counts = run(ghz_circuit(2), 20_000)
        table = mitigate_counts(counts, cal)
        assert sum(table.values()) == pytest.approx(1.0)
        assert all(p >= 0 for p in table.values())

    def test_mitigated_expectation_z(self):
        """⟨ZZ⟩ of a Bell state is 1; readout noise shrinks it; mitigation
        restores it."""
        run = noisy_runner(readout=(0.07, 0.07), seed=3)
        cal = calibrate_readout(run, 2, shots=40_000)
        counts = run(ghz_circuit(2), 40_000)
        raw = counts.expectation_z()
        mitigated = mitigated_expectation_z(counts, cal)
        assert raw < 0.95
        assert mitigated == pytest.approx(1.0, abs=0.03)
        assert mitigated > raw

    def test_undersized_calibration_rejected(self):
        run = noisy_runner(seed=4)
        cal = calibrate_readout(run, 1, shots=1000)
        counts = run(ghz_circuit(2), 1000)
        with pytest.raises(ReproError):
            mitigate_counts(counts, cal)

    def test_singular_confusion_rejected(self):
        cal = ReadoutCalibration((np.full((2, 2), 0.5),))
        qc = QuantumCircuit(1)
        qc.measure(0)
        counts = sample_counts(qc, 100, rng=0)
        with pytest.raises(ReproError):
            mitigate_counts(counts, cal)


class TestFolding:
    def test_fold_scale_one_is_identity(self):
        qc = ghz_circuit(2)
        folded = fold_circuit(qc, 1)
        assert folded.count_ops()["cx"] == qc.count_ops()["cx"]

    def test_fold_triples_gate_count(self):
        qc = ghz_circuit(2)
        folded = fold_circuit(qc, 3)
        assert folded.count_ops()["cx"] == 3 * qc.count_ops()["cx"]

    def test_fold_preserves_semantics(self):
        from repro.simulator import ideal_probabilities

        qc = ghz_circuit(3)
        p1 = ideal_probabilities(qc)
        p3 = ideal_probabilities(fold_circuit(qc, 3))
        for key in set(p1) | set(p3):
            assert p1.get(key, 0) == pytest.approx(p3.get(key, 0), abs=1e-9)

    def test_even_scale_rejected(self):
        with pytest.raises(ReproError):
            fold_circuit(ghz_circuit(2), 2)


class TestZNE:
    def test_zne_improves_noisy_expectation(self):
        """⟨ZZ⟩ of a Bell pair under two-qubit depolarizing: folding
        amplifies the error; extrapolation lands nearer the ideal 1."""
        run = noisy_runner(readout=(0.0, 0.0), gate_p=0.04, seed=5)
        qc = ghz_circuit(2)
        extrapolated, measured = zne_expectation(
            qc, run, [0, 1], scales=(1, 3, 5), shots=30_000
        )
        assert measured[5] < measured[3] < measured[1] < 1.0
        assert abs(extrapolated - 1.0) < abs(measured[1] - 1.0)

    def test_zne_composes_with_readout_mitigation(self):
        run = noisy_runner(readout=(0.04, 0.04), gate_p=0.03, seed=6)
        cal = calibrate_readout(run, 2, shots=30_000)
        extrapolated, _ = zne_expectation(
            ghz_circuit(2), run, [0, 1], shots=30_000, calibration=cal
        )
        assert extrapolated == pytest.approx(1.0, abs=0.08)
