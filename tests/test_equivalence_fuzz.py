"""Differential cross-engine equivalence fuzzer.

Property under test: for every circuit the generator can produce,
**planned execution is bit-identical to unplanned execution** on every
backend — same structural decisions, same RNG stream, same seeded
counts.  The plan layer is a pure memoization, so any divergence is a
bug by definition; random circuits hunt for the shape that breaks it.

Five shape families cover the distinct execution regimes:

* ``clifford`` — tableau-eligible circuits (also swept through the
  packed word-parallel tableau via ``tableau_impl="packed"``);
* ``clifford_t`` — Clifford prefix + diagonal tail: hybrid boundary
  crossing, diagonal-run fusion, MPS swap routing;
* ``parameterized`` — random rotation angles: block fusion on
  non-diagonal runs, rebinding against a shared structural hash;
* ``noisy`` — depolarizing noise: the grouped walk's fork/injection
  machinery under plans;
* ``mid_measure`` — mid-circuit measure/reset: the per-shot event walk.

Budgets: the tier-1 sample keeps the suite fast; ``--fuzz-deep`` runs
hundreds of circuits per invocation (the acceptance budget).
"""

import numpy as np
import pytest

from helpers.parity import assert_counts_identical, counts_under_mode
from repro.circuits import QuantumCircuit
from repro.compiler import plans
from repro.simulator import NoiseModel, depolarizing_error

pytestmark = pytest.mark.fuzz

#: Circuits per family: (tier-1 sample, deep budget).  Deep runs the
#: acceptance sweep: 5 families × 48 = 240 generated circuits.
BUDGET = (6, 48)

_CLIFFORD_1Q = ("h", "s", "sdg", "x", "y", "z", "sx")
_CLIFFORD_2Q = ("cx", "cz", "swap", "iswap")
_ROTATIONS = ("rx", "ry", "rz", "p")


def _budget(deep: bool) -> int:
    return BUDGET[1] if deep else BUDGET[0]


def _random_clifford(rng: np.random.Generator, n: int, depth: int) -> QuantumCircuit:
    qc = QuantumCircuit(n, n)
    for _ in range(depth):
        if n >= 2 and rng.random() < 0.35:
            a, b = rng.choice(n, size=2, replace=False)
            getattr(qc, _CLIFFORD_2Q[rng.integers(len(_CLIFFORD_2Q))])(int(a), int(b))
        else:
            q = int(rng.integers(n))
            getattr(qc, _CLIFFORD_1Q[rng.integers(len(_CLIFFORD_1Q))])(q)
    qc.measure_all()
    return qc


def _random_clifford_t(rng, n, depth) -> QuantumCircuit:
    qc = QuantumCircuit(n, n)
    for _ in range(depth):
        r = rng.random()
        if n >= 2 and r < 0.3:
            a, b = rng.choice(n, size=2, replace=False)
            getattr(qc, _CLIFFORD_2Q[rng.integers(len(_CLIFFORD_2Q))])(int(a), int(b))
        elif r < 0.6:
            q = int(rng.integers(n))
            getattr(qc, _CLIFFORD_1Q[rng.integers(len(_CLIFFORD_1Q))])(q)
        else:
            q = int(rng.integers(n))
            qc.t(q) if rng.random() < 0.5 else qc.tdg(q)
    qc.measure_all()
    return qc


def _random_parameterized(rng, n, depth) -> QuantumCircuit:
    qc = QuantumCircuit(n, n)
    for _ in range(depth):
        if n >= 2 and rng.random() < 0.3:
            a, b = rng.choice(n, size=2, replace=False)
            if rng.random() < 0.5:
                qc.cx(int(a), int(b))
            else:
                qc.rzz(float(rng.uniform(0, 2 * np.pi)), int(a), int(b))
        else:
            q = int(rng.integers(n))
            gate = _ROTATIONS[rng.integers(len(_ROTATIONS))]
            getattr(qc, gate)(float(rng.uniform(0, 2 * np.pi)), q)
    qc.measure_all()
    return qc


def _random_mid_measure(rng, n, depth) -> QuantumCircuit:
    qc = QuantumCircuit(n, n)
    for _ in range(depth):
        r = rng.random()
        q = int(rng.integers(n))
        if r < 0.12:
            qc.measure(q, q)
        elif r < 0.2:
            qc.reset(q)
        elif n >= 2 and r < 0.45:
            a, b = rng.choice(n, size=2, replace=False)
            qc.cx(int(a), int(b))
        elif r < 0.7:
            getattr(qc, _CLIFFORD_1Q[rng.integers(len(_CLIFFORD_1Q))])(q)
        else:
            qc.rz(float(rng.uniform(0, 2 * np.pi)), q)
    qc.measure_all()
    return qc


def _fuzz_noise(rng) -> NoiseModel:
    nm = NoiseModel()
    nm.add_gate_error(depolarizing_error(float(rng.uniform(0.02, 0.12)), 2), "cx")
    nm.add_gate_error(depolarizing_error(float(rng.uniform(0.01, 0.08)), 1), "h")
    return nm


def _assert_planned_equals_unplanned(
    qc, modes, seed, noise=None, shots=128, **mode_options
):
    for mode in modes:
        planned = counts_under_mode(
            qc, mode, seed, noise=noise, shots=shots, **mode_options
        )
        plans.PLANS_ENABLED = False
        try:
            unplanned = counts_under_mode(
                qc, mode, seed, noise=noise, shots=shots, **mode_options
            )
        finally:
            plans.PLANS_ENABLED = True
        assert_counts_identical(planned, unplanned, context=(mode, seed))


class TestPlannedVsUnplannedFuzz:
    def test_clifford_family(self, fuzz_deep):
        rng = np.random.default_rng(1001)
        for i in range(_budget(fuzz_deep)):
            n = int(rng.integers(2, 7))
            qc = _random_clifford(rng, n, int(rng.integers(8, 30)))
            _assert_planned_equals_unplanned(
                qc, ("fast", "batched", "stabilizer", "hybrid", "mps"), seed=i
            )
            # the packed word-parallel tableau is a sub-option, swept
            # explicitly so narrow fuzz circuits exercise it too
            _assert_planned_equals_unplanned(
                qc, ("stabilizer",), seed=i, tableau_impl="packed"
            )

    def test_clifford_t_family(self, fuzz_deep):
        rng = np.random.default_rng(2002)
        for i in range(_budget(fuzz_deep)):
            n = int(rng.integers(2, 7))
            qc = _random_clifford_t(rng, n, int(rng.integers(8, 30)))
            _assert_planned_equals_unplanned(
                qc, ("fast", "batched", "hybrid", "mps"), seed=i
            )

    def test_parameterized_family(self, fuzz_deep):
        rng = np.random.default_rng(3003)
        for i in range(_budget(fuzz_deep)):
            n = int(rng.integers(2, 6))
            qc = _random_parameterized(rng, n, int(rng.integers(8, 24)))
            _assert_planned_equals_unplanned(
                qc, ("fast", "batched", "hybrid", "mps"), seed=i
            )

    def test_noisy_family(self, fuzz_deep):
        rng = np.random.default_rng(4004)
        for i in range(_budget(fuzz_deep)):
            n = int(rng.integers(2, 6))
            qc = _random_clifford_t(rng, n, int(rng.integers(8, 20)))
            _assert_planned_equals_unplanned(
                qc,
                ("fast", "batched", "hybrid", "mps"),
                seed=i,
                noise=_fuzz_noise(rng),
            )

    def test_mid_measure_family(self, fuzz_deep):
        rng = np.random.default_rng(5005)
        for i in range(_budget(fuzz_deep)):
            n = int(rng.integers(2, 5))
            qc = _random_mid_measure(rng, n, int(rng.integers(8, 20)))
            _assert_planned_equals_unplanned(
                qc, ("fast", "hybrid", "mps"), seed=i, shots=64
            )

    def test_generator_covers_regimes(self):
        """The families must actually produce what they claim — e.g.
        mid-measure circuits that trigger the per-shot walk — or the
        sweeps above prove less than advertised."""
        from repro.simulator.sampler import _needs_per_shot

        rng = np.random.default_rng(5005)
        hits = 0
        for _ in range(12):
            qc = _random_mid_measure(rng, 4, 16)
            hits += _needs_per_shot(qc)
        assert hits >= 6

        rng = np.random.default_rng(2002)
        qc = _random_clifford_t(rng, 6, 30)
        assert any(inst.name in ("t", "tdg") for inst in qc)
