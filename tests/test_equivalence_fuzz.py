"""Differential cross-engine equivalence fuzzer.

Property under test: for every circuit the generator can produce,
**planned execution is bit-identical to unplanned execution** on every
backend — same structural decisions, same RNG stream, same seeded
counts.  The plan layer is a pure memoization, so any divergence is a
bug by definition; random circuits hunt for the shape that breaks it.

Five shape families cover the distinct execution regimes:

* ``clifford`` — tableau-eligible circuits (also swept through the
  packed word-parallel tableau via ``tableau_impl="packed"``);
* ``clifford_t`` — Clifford prefix + diagonal tail: hybrid boundary
  crossing, diagonal-run fusion, MPS swap routing;
* ``parameterized`` — random rotation angles: block fusion on
  non-diagonal runs, rebinding against a shared structural hash;
* ``noisy`` — depolarizing noise: the grouped walk's fork/injection
  machinery under plans;
* ``mid_measure`` — mid-circuit measure/reset: the per-shot event walk;
* ``wide`` — deep registers past the blocked-sweep tile: cache-blocked
  execution plus the lazy qubit remap, fuzzed on **two** axes (planned
  vs unplanned, blocked vs unblocked).  Tier-1 shrinks the tile via
  ``batch_max_bytes`` so 8–10 qubits already count as wide; the deep
  budget runs the real 16–20 qubit registers.

Budgets: the tier-1 sample keeps the suite fast; ``--fuzz-deep`` runs
hundreds of circuits per invocation (the acceptance budget).
"""

import numpy as np
import pytest

from helpers.parity import assert_counts_identical, counts_under_mode
from repro.circuits import QuantumCircuit
from repro.compiler import plans
from repro.simulator import NoiseModel, depolarizing_error

pytestmark = pytest.mark.fuzz

#: Circuits per family: (tier-1 sample, deep budget).  Deep runs the
#: acceptance sweep: 5 families × 48 = 240 generated circuits.
BUDGET = (6, 48)

_CLIFFORD_1Q = ("h", "s", "sdg", "x", "y", "z", "sx")
_CLIFFORD_2Q = ("cx", "cz", "swap", "iswap")
_ROTATIONS = ("rx", "ry", "rz", "p")


def _budget(deep: bool) -> int:
    return BUDGET[1] if deep else BUDGET[0]


def _random_clifford(rng: np.random.Generator, n: int, depth: int) -> QuantumCircuit:
    qc = QuantumCircuit(n, n)
    for _ in range(depth):
        if n >= 2 and rng.random() < 0.35:
            a, b = rng.choice(n, size=2, replace=False)
            getattr(qc, _CLIFFORD_2Q[rng.integers(len(_CLIFFORD_2Q))])(int(a), int(b))
        else:
            q = int(rng.integers(n))
            getattr(qc, _CLIFFORD_1Q[rng.integers(len(_CLIFFORD_1Q))])(q)
    qc.measure_all()
    return qc


def _random_clifford_t(rng, n, depth) -> QuantumCircuit:
    qc = QuantumCircuit(n, n)
    for _ in range(depth):
        r = rng.random()
        if n >= 2 and r < 0.3:
            a, b = rng.choice(n, size=2, replace=False)
            getattr(qc, _CLIFFORD_2Q[rng.integers(len(_CLIFFORD_2Q))])(int(a), int(b))
        elif r < 0.6:
            q = int(rng.integers(n))
            getattr(qc, _CLIFFORD_1Q[rng.integers(len(_CLIFFORD_1Q))])(q)
        else:
            q = int(rng.integers(n))
            qc.t(q) if rng.random() < 0.5 else qc.tdg(q)
    qc.measure_all()
    return qc


def _random_parameterized(rng, n, depth) -> QuantumCircuit:
    qc = QuantumCircuit(n, n)
    for _ in range(depth):
        if n >= 2 and rng.random() < 0.3:
            a, b = rng.choice(n, size=2, replace=False)
            if rng.random() < 0.5:
                qc.cx(int(a), int(b))
            else:
                qc.rzz(float(rng.uniform(0, 2 * np.pi)), int(a), int(b))
        else:
            q = int(rng.integers(n))
            gate = _ROTATIONS[rng.integers(len(_ROTATIONS))]
            getattr(qc, gate)(float(rng.uniform(0, 2 * np.pi)), q)
    qc.measure_all()
    return qc


def _random_mid_measure(rng, n, depth) -> QuantumCircuit:
    qc = QuantumCircuit(n, n)
    for _ in range(depth):
        r = rng.random()
        q = int(rng.integers(n))
        if r < 0.12:
            qc.measure(q, q)
        elif r < 0.2:
            qc.reset(q)
        elif n >= 2 and r < 0.45:
            a, b = rng.choice(n, size=2, replace=False)
            qc.cx(int(a), int(b))
        elif r < 0.7:
            getattr(qc, _CLIFFORD_1Q[rng.integers(len(_CLIFFORD_1Q))])(q)
        else:
            qc.rz(float(rng.uniform(0, 2 * np.pi)), q)
    qc.measure_all()
    return qc


def _random_wide(rng, n, depth) -> QuantumCircuit:
    """Deep wide-register shapes: bursts of activity anchored on a
    3-qubit neighborhood (mostly low, sometimes high — forcing remaps),
    with diagonal excursions to arbitrary qubits riding the sweeps.
    The burst locality mirrors real wide circuits, where most operand
    sets sit far below the (14-qubit) tile; uniform qubit choice at the
    fuzz suite's shrunken tile would never let the scheduler engage."""
    qc = QuantumCircuit(n, n)
    diagonals = ("t", "tdg", "z", "s")
    emitted = 0
    while emitted < depth:
        anchor = 0 if rng.random() < 0.55 else int(rng.integers(n - 2))
        for _ in range(int(rng.integers(5, 10))):
            r = rng.random()
            if r < 0.25:
                q = int(rng.integers(n))
                if rng.random() < 0.5:
                    qc.rz(float(rng.uniform(0, 2 * np.pi)), q)
                else:
                    getattr(qc, diagonals[rng.integers(len(diagonals))])(q)
            elif r < 0.6:
                q = anchor + int(rng.integers(3))
                qc.ry(float(rng.uniform(0, 2 * np.pi)), q)
            else:
                a = anchor + int(rng.integers(2))
                qc.cz(a, a + 1) if rng.random() < 0.5 else qc.cx(a, a + 1)
            emitted += 1
    qc.measure_all()
    return qc


def _fuzz_noise(rng) -> NoiseModel:
    nm = NoiseModel()
    nm.add_gate_error(depolarizing_error(float(rng.uniform(0.02, 0.12)), 2), "cx")
    nm.add_gate_error(depolarizing_error(float(rng.uniform(0.01, 0.08)), 1), "h")
    return nm


def _assert_blocked_equals_unblocked(
    qc, modes, seed, noise=None, shots=128, **mode_options
):
    """The blocked-sweep axis: turning cache blocking off must not move
    a single seeded count (the unblocked path is the reference math)."""
    from repro.simulator.engines import dense

    for mode in modes:
        blocked = counts_under_mode(
            qc, mode, seed, noise=noise, shots=shots, **mode_options
        )
        dense.BLOCKED_SWEEPS = False
        try:
            unblocked = counts_under_mode(
                qc, mode, seed, noise=noise, shots=shots, **mode_options
            )
        finally:
            dense.BLOCKED_SWEEPS = True
        assert_counts_identical(blocked, unblocked, context=("blocked", mode, seed))


def _assert_planned_equals_unplanned(
    qc, modes, seed, noise=None, shots=128, **mode_options
):
    for mode in modes:
        planned = counts_under_mode(
            qc, mode, seed, noise=noise, shots=shots, **mode_options
        )
        plans.PLANS_ENABLED = False
        try:
            unplanned = counts_under_mode(
                qc, mode, seed, noise=noise, shots=shots, **mode_options
            )
        finally:
            plans.PLANS_ENABLED = True
        assert_counts_identical(planned, unplanned, context=(mode, seed))


def _assert_traced_equals_untraced(
    qc, modes, seed, noise=None, shots=128, **mode_options
):
    """Tracing is observational only: a traced run must reproduce the
    untraced seeded counts bit for bit on every backend."""
    for mode in modes:
        untraced = counts_under_mode(
            qc, mode, seed, noise=noise, shots=shots, **mode_options
        )
        traced = counts_under_mode(
            qc, mode, seed, noise=noise, shots=shots, trace=True, **mode_options
        )
        assert_counts_identical(untraced, traced, context=("traced", mode, seed))


class TestPlannedVsUnplannedFuzz:
    def test_clifford_family(self, fuzz_deep):
        rng = np.random.default_rng(1001)
        for i in range(_budget(fuzz_deep)):
            n = int(rng.integers(2, 7))
            qc = _random_clifford(rng, n, int(rng.integers(8, 30)))
            _assert_planned_equals_unplanned(
                qc, ("fast", "batched", "stabilizer", "hybrid", "mps"), seed=i
            )
            # the packed word-parallel tableau is a sub-option, swept
            # explicitly so narrow fuzz circuits exercise it too
            _assert_planned_equals_unplanned(
                qc, ("stabilizer",), seed=i, tableau_impl="packed"
            )

    def test_clifford_t_family(self, fuzz_deep):
        rng = np.random.default_rng(2002)
        for i in range(_budget(fuzz_deep)):
            n = int(rng.integers(2, 7))
            qc = _random_clifford_t(rng, n, int(rng.integers(8, 30)))
            _assert_planned_equals_unplanned(
                qc, ("fast", "batched", "hybrid", "mps"), seed=i
            )

    def test_parameterized_family(self, fuzz_deep):
        rng = np.random.default_rng(3003)
        for i in range(_budget(fuzz_deep)):
            n = int(rng.integers(2, 6))
            qc = _random_parameterized(rng, n, int(rng.integers(8, 24)))
            _assert_planned_equals_unplanned(
                qc, ("fast", "batched", "hybrid", "mps"), seed=i
            )

    def test_noisy_family(self, fuzz_deep):
        rng = np.random.default_rng(4004)
        for i in range(_budget(fuzz_deep)):
            n = int(rng.integers(2, 6))
            qc = _random_clifford_t(rng, n, int(rng.integers(8, 20)))
            _assert_planned_equals_unplanned(
                qc,
                ("fast", "batched", "hybrid", "mps"),
                seed=i,
                noise=_fuzz_noise(rng),
            )

    def test_mid_measure_family(self, fuzz_deep):
        rng = np.random.default_rng(5005)
        for i in range(_budget(fuzz_deep)):
            n = int(rng.integers(2, 5))
            qc = _random_mid_measure(rng, n, int(rng.integers(8, 20)))
            _assert_planned_equals_unplanned(
                qc, ("fast", "hybrid", "mps"), seed=i, shots=64
            )

    def test_wide_family(self, fuzz_deep):
        """Blocked sweeps + remap unwind on the grouped walk.  Tier-1
        shrinks the tile (``batch_max_bytes=1024`` → 3-qubit tiles) so
        8–10 qubit circuits already exercise the wide machinery; deep
        runs genuine 16–18 qubit registers at the default tile."""
        rng = np.random.default_rng(6006)
        if fuzz_deep:
            cases = [(int(rng.integers(16, 19)), int(rng.integers(24, 36))) for _ in range(3)]
            opts, shots = {}, 24
        else:
            cases = [(int(rng.integers(8, 11)), int(rng.integers(24, 40))) for _ in range(3)]
            opts, shots = {"batch_max_bytes": 1024}, 64
        for i, (n, depth) in enumerate(cases):
            qc = _random_wide(rng, n, depth)
            nm = NoiseModel()
            nm.add_gate_error(
                depolarizing_error(float(rng.uniform(0.01, 0.03)), 2), "cx"
            )
            _assert_planned_equals_unplanned(
                qc, ("fast", "batched"), seed=i, noise=nm, shots=shots, **opts
            )
            _assert_blocked_equals_unblocked(
                qc, ("fast", "batched"), seed=i, noise=nm, shots=shots, **opts
            )

    def test_wide_family_per_shot(self, fuzz_deep):
        """Mid-circuit measurement drops the sampler to the per-shot
        event walk; the blocked sweep must stay invisible there too."""
        rng = np.random.default_rng(7007)
        if fuzz_deep:
            n, shots, opts = 16, 12, {}
        else:
            n, shots, opts = 9, 48, {"batch_max_bytes": 1024}
        for i in range(2):
            qc = _random_mid_measure(rng, n, int(rng.integers(20, 32)))
            _assert_blocked_equals_unblocked(
                qc, ("fast",), seed=i, shots=shots, **opts
            )

    def test_wide_family_hits_the_blocked_scheduler(self):
        """The generator must actually produce windows the scheduler
        accepts at the fuzz tile width, or the sweeps above silently
        degrade into the plain path."""
        from repro.simulator.engines import dense

        rng = np.random.default_rng(6006)
        hits = 0
        for _ in range(6):
            qc = _random_wide(rng, 9, 32)
            ops = [inst for inst in qc if inst.name != "measure"]
            partition = dense.partition_window(ops)
            if dense.plan_blocked_window(ops, partition, 9, tile_qubits=3):
                hits += 1
        assert hits >= 3

    def test_generator_covers_regimes(self):
        """The families must actually produce what they claim — e.g.
        mid-measure circuits that trigger the per-shot walk — or the
        sweeps above prove less than advertised."""
        from repro.simulator.sampler import _needs_per_shot

        rng = np.random.default_rng(5005)
        hits = 0
        for _ in range(12):
            qc = _random_mid_measure(rng, 4, 16)
            hits += _needs_per_shot(qc)
        assert hits >= 6

        rng = np.random.default_rng(2002)
        qc = _random_clifford_t(rng, 6, 30)
        assert any(inst.name in ("t", "tdg") for inst in qc)


class TestFaultedRecoveryFuzz:
    """The crash-recovery analogue of the planned/unplanned pin: on
    random circuits, a sharded run that loses a worker (or a block, or
    its whole pool, or its prefix segment) mid-flight must still
    reproduce the unfaulted ``workers=1`` counts bit for bit.  The
    block-stream contract says recovery can never move a count; this
    family hunts for the circuit shape that breaks it."""

    _FAULT_SHAPES = (
        lambda F: F("shard.block", action="kill", index=0, times=1, worker_only=True),
        lambda F: F("shard.block", action="raise", index=1, times=1, worker_only=True),
        lambda F: F("shard.init", action="kill", times=None, worker_only=True),
        lambda F: F("shard.attach", action="raise", times=None, worker_only=True),
    )

    @pytest.mark.faults
    def test_recovered_sharding_family(self, fuzz_deep, monkeypatch):
        from repro.simulator import sharding
        from repro.simulator.sharding import sample_counts_sharded
        from repro.testing import Fault, inject_faults

        monkeypatch.setattr(sharding, "REBUILD_BACKOFF_BASE", 0.0)
        rng = np.random.default_rng(909)
        # Pooled runs dominate the budget, so this family samples fewer
        # circuits than the in-process families (deep: 6, tier-1: 2).
        for i in range(max(2, _budget(fuzz_deep) // 8)):
            n = int(rng.integers(4, 7))
            qc = _random_clifford_t(rng, n, int(rng.integers(12, 24)))
            noise = _fuzz_noise(rng)
            clean = sample_counts_sharded(
                qc, 600, noise=noise, seed=1000 + i, workers=1
            )
            fault = self._FAULT_SHAPES[i % len(self._FAULT_SHAPES)](Fault)
            with inject_faults(fault):
                faulted = sample_counts_sharded(
                    qc, 600, noise=noise, seed=1000 + i, workers=3
                )
            assert_counts_identical(
                clean, faulted, context=("recovered", i, fault.point)
            )


class TestTracedVsUntracedFuzz:
    """The flight-recorder analogue of the planned/unplanned pin: the
    tracer hangs span bookkeeping off every hot loop (grouped walk,
    engine windows, per-shot walk), so random circuits hunt for the
    shape where instrumentation would perturb the RNG stream."""

    def test_traced_grouped_family(self, fuzz_deep):
        rng = np.random.default_rng(8008)
        for i in range(_budget(fuzz_deep)):
            n = int(rng.integers(2, 7))
            qc = _random_clifford_t(rng, n, int(rng.integers(8, 24)))
            _assert_traced_equals_untraced(
                qc,
                ("fast", "batched", "hybrid", "mps"),
                seed=i,
                noise=_fuzz_noise(rng),
            )

    def test_traced_mid_measure_family(self, fuzz_deep):
        rng = np.random.default_rng(9009)
        for i in range(max(2, _budget(fuzz_deep) // 2)):
            n = int(rng.integers(2, 5))
            qc = _random_mid_measure(rng, n, int(rng.integers(8, 16)))
            _assert_traced_equals_untraced(
                qc, ("fast", "hybrid", "mps"), seed=i, shots=64
            )
