"""Tests for the trajectory-grouped shot sampler.

The key validation: the grouped fast path agrees statistically with (a)
the exact density-matrix evolution, and (b) the slow per-shot path.
"""

import numpy as np
import pytest

from helpers.parity import assert_counts_identical, ghz_t, heavy_noise
from repro.circuits import QuantumCircuit, bell_circuit, ghz_circuit
from repro.errors import SimulationError
from repro.simulator import (
    Counts,
    NoiseModel,
    ReadoutError,
    depolarizing_error,
    pauli_error,
    sample_counts,
    simulate_density,
)
from repro.simulator.sampler import _needs_per_shot, ideal_probabilities


class TestNoiselessSampling:
    def test_bell_distribution(self):
        counts = sample_counts(bell_circuit(), 40_000, rng=0)
        probs = counts.probabilities()
        assert probs.get("00", 0) == pytest.approx(0.5, abs=0.01)
        assert probs.get("11", 0) == pytest.approx(0.5, abs=0.01)

    def test_deterministic_with_seed(self):
        a = sample_counts(ghz_circuit(3), 100, rng=5)
        b = sample_counts(ghz_circuit(3), 100, rng=5)
        assert a.to_dict() == b.to_dict()

    def test_no_measurements_raises(self):
        with pytest.raises(SimulationError):
            sample_counts(ghz_circuit(2, measure=False), 10)

    def test_zero_shots_raises(self):
        with pytest.raises(SimulationError):
            sample_counts(ghz_circuit(2), 0)

    def test_partial_measurement_unmeasured_bits_zero(self):
        qc = QuantumCircuit(3)
        qc.x(0)
        qc.x(2)
        qc.measure(0)
        counts = sample_counts(qc, 50, rng=0)
        assert counts.most_frequent() == "001"  # only bit 0 recorded


class TestIdealProbabilities:
    def test_bell(self):
        probs = ideal_probabilities(bell_circuit())
        assert probs == pytest.approx({"00": 0.5, "11": 0.5})

    def test_clbit_remapping(self):
        qc = QuantumCircuit(2, num_clbits=2)
        qc.x(0)
        qc.measure(0, 1)  # qubit 0 into clbit 1
        probs = ideal_probabilities(qc)
        assert probs == pytest.approx({"10": 1.0})


class TestPerShotDetection:
    def test_terminal_measures_grouped(self):
        assert not _needs_per_shot(ghz_circuit(4))

    def test_reset_forces_per_shot(self):
        qc = QuantumCircuit(1)
        qc.h(0)
        qc.reset(0)
        qc.measure(0)
        assert _needs_per_shot(qc)

    def test_gate_after_measure_forces_per_shot(self):
        qc = QuantumCircuit(1)
        qc.measure(0)
        qc.x(0)
        qc.measure(0)
        assert _needs_per_shot(qc)


class TestNoisySampling:
    def test_bit_flip_rate_matches_analytic(self):
        """X error with prob p after state prep flips the outcome."""
        qc = QuantumCircuit(1)
        qc.id(0)
        qc.measure(0)
        nm = NoiseModel()
        nm.add_gate_error(pauli_error([("X", 0.15)]), "id")
        counts = sample_counts(qc, 40_000, noise=nm, rng=1)
        assert counts.probabilities().get("1", 0) == pytest.approx(0.15, abs=0.01)

    def test_grouped_matches_density_matrix(self):
        """Sampled GHZ-3 distribution ≈ exact noisy density matrix."""
        qc = ghz_circuit(3)
        nm = NoiseModel()
        nm.add_gate_error(depolarizing_error(0.05, 2), "cx")
        counts = sample_counts(qc, 60_000, noise=nm, rng=2)
        rho = simulate_density(qc, nm)
        exact = rho.probabilities()
        for basis in range(8):
            key = format(basis, "03b")
            assert counts.probabilities().get(key, 0.0) == pytest.approx(
                exact[basis], abs=0.01
            )

    def test_readout_error_applied(self):
        qc = QuantumCircuit(1)
        qc.measure(0)
        nm = NoiseModel()
        nm.add_readout_error(ReadoutError(0.2, 0.0), 0)
        counts = sample_counts(qc, 30_000, noise=nm, rng=3)
        assert counts.probabilities().get("1", 0) == pytest.approx(0.2, abs=0.01)

    def test_reset_error_depopulates(self):
        """A 'reset' error term drives the qubit to |0⟩."""
        qc = QuantumCircuit(1)
        qc.x(0)
        qc.measure(0)
        nm = NoiseModel()
        from repro.simulator.noise import ErrorTerm, QuantumError

        nm.add_gate_error(QuantumError([ErrorTerm("reset", 0.3)]), "x")
        counts = sample_counts(qc, 30_000, noise=nm, rng=4)
        assert counts.probabilities().get("0", 0) == pytest.approx(0.3, abs=0.01)

    def test_per_shot_path_with_noise(self):
        """Mid-circuit reset circuit still honours gate noise."""
        qc = QuantumCircuit(1)
        qc.x(0)
        qc.reset(0)
        qc.x(0)
        qc.measure(0)
        nm = NoiseModel()
        nm.add_gate_error(pauli_error([("X", 0.1)]), "x")
        counts = sample_counts(qc, 4000, noise=nm, rng=5)
        # the reset erases whatever the first x (and its error) did; only
        # the final x's error matters: P(1) = 1 − 0.1
        p1 = counts.probabilities().get("1", 0)
        assert p1 == pytest.approx(0.9, abs=0.02)

    def test_instruction_errors_extra(self):
        qc = QuantumCircuit(1)
        qc.id(0)
        qc.measure(0)
        extra = {0: pauli_error([("X", 0.25)])}
        counts = sample_counts(qc, 30_000, rng=6, instruction_errors=extra)
        assert counts.probabilities().get("1", 0) == pytest.approx(0.25, abs=0.01)

    def test_grouped_vs_per_shot_consistency(self):
        """Force the per-shot path via a trailing reset on an ancilla and
        compare against the grouped path on the equivalent circuit."""
        nm = NoiseModel()
        nm.add_gate_error(depolarizing_error(0.08, 1), "h")
        grouped_qc = QuantumCircuit(1)
        grouped_qc.h(0)
        grouped_qc.measure(0)
        per_shot_qc = QuantumCircuit(2)
        per_shot_qc.h(0)
        per_shot_qc.measure(0)
        per_shot_qc.reset(1)  # forces per-shot machinery
        g = sample_counts(grouped_qc, 30_000, noise=nm, rng=7)
        p = sample_counts(per_shot_qc, 6000, noise=nm, rng=8).marginal([0])
        assert g.total_variation_distance(p) < 0.02


class TestSuffixCheckpoints:
    """Suffix-checkpoint reuse between trajectory groups that share more
    than the clean prefix: RNG streams and visit order are untouched, so
    seeded counts must be bit-identical with the optimization on or off,
    on every engine."""

    def _counts(self, qc, mode, seed, checkpoints):
        from repro.simulator import engine_mode
        from repro.simulator import sampler as sampler_mod

        prev = sampler_mod.USE_SUFFIX_CHECKPOINTS
        try:
            sampler_mod.USE_SUFFIX_CHECKPOINTS = checkpoints
            with engine_mode(mode):
                return sample_counts(qc, 512, noise=heavy_noise(), rng=seed)
        finally:
            sampler_mod.USE_SUFFIX_CHECKPOINTS = prev

    def test_seeded_counts_identical_across_toggle(self):
        cases = [
            ("fast", ghz_t(8)),
            ("hybrid", ghz_t(8)),
            ("stabilizer", ghz_circuit(10)),
            ("mps", ghz_t(8)),
        ]
        for mode, qc in cases:
            for seed in (0, 7, 123):
                on = self._counts(qc, mode, seed, True)
                off = self._counts(qc, mode, seed, False)
                assert_counts_identical(on, off, context=(mode, seed))

    def test_checkpoints_actually_fire(self):
        """The workload above must contain consecutive groups sharing a
        leading injection — otherwise the parity test proves nothing."""
        from repro.simulator import sampler as sampler_mod

        qc = ghz_t(8)
        noisy = sampler_mod._noisy_ops(qc, heavy_noise(), {})
        groups = sampler_mod._group_realizations(
            noisy, 512, np.random.default_rng(7)
        )
        end = len(list(qc))
        ordered = sorted(
            groups.items(), key=lambda kv: kv[0][0][0] if kv[0] else end
        )
        shared = sum(
            1
            for i in range(len(ordered) - 1)
            if ordered[i][0]
            and ordered[i + 1][0]
            and ordered[i][0][:1] == ordered[i + 1][0][:1]
        )
        assert shared >= 5
