"""Tests for the QPU device model."""

import pytest

from repro.circuits import QuantumCircuit, ghz_circuit
from repro.errors import DeviceError, DeviceUnavailableError, TopologyError
from repro.qpu import (
    FULL_CALIBRATION_DURATION,
    QUICK_CALIBRATION_DURATION,
    DeviceStatus,
    QPUDevice,
)
from repro.transpiler import transpile
from repro.utils.units import MINUTE


def native_ghz(device, n=3):
    return transpile(
        ghz_circuit(n), device.topology, snapshot=device.calibration()
    ).circuit


class TestValidation:
    def test_non_native_gate_rejected(self, device):
        qc = QuantumCircuit(2)
        qc.h(0)
        qc.measure_all()
        with pytest.raises(DeviceError):
            device.execute(qc)

    def test_uncoupled_cz_rejected(self, device):
        qc = QuantumCircuit(20)
        qc.cz(0, 19)
        qc.measure(0)
        with pytest.raises(TopologyError):
            device.execute(qc)

    def test_too_many_qubits_rejected(self, device):
        qc = QuantumCircuit(21)
        qc.measure(0)
        with pytest.raises(DeviceError):
            device.execute(qc)

    def test_zero_shots_rejected(self, device):
        with pytest.raises(DeviceError):
            device.execute(native_ghz(device), shots=0)

    def test_native_circuit_accepted(self, device):
        result = device.execute(native_ghz(device), shots=64)
        assert result.shots == 64


class TestExecution:
    def test_ghz_outcome_quality(self, device):
        result = device.execute(native_ghz(device, 4), shots=1500)
        fid = result.counts.marginal([0, 1, 2, 3]).ghz_fidelity_estimate()
        assert fid > 0.75  # noisy but recognizable

    def test_job_advances_time(self, device):
        t0 = device.time
        result = device.execute(native_ghz(device), shots=200)
        assert device.time == pytest.approx(t0 + result.duration)

    def test_shot_duration_reset_dominated(self, device):
        result = device.execute(native_ghz(device), shots=16)
        # 300 µs reset dominates; gates + readout add a few µs
        assert 300e-6 < result.shot_duration < 320e-6

    def test_job_counter_increments(self, device):
        r1 = device.execute(native_ghz(device), shots=16)
        r2 = device.execute(native_ghz(device), shots=16)
        assert r2.job_id == r1.job_id + 1
        assert device.jobs_executed == 2

    def test_busy_seconds_accumulate(self, device):
        device.execute(native_ghz(device), shots=100)
        assert device.busy_seconds > 0

    def test_output_bytes_formats(self, device):
        result = device.execute(native_ghz(device, 3), shots=100)
        assert result.output_bytes("bitstrings") == 100 * 3
        assert result.output_bytes("raw_iq") == 100 * 3 * 8
        assert result.output_bytes("histogram") < result.output_bytes("bitstrings")
        with pytest.raises(DeviceError):
            result.output_bytes("parquet")

    def test_data_rate_positive(self, device):
        result = device.execute(native_ghz(device), shots=256)
        assert result.data_rate() > 0

    def test_execution_reproducible_with_seed(self):
        a = QPUDevice(seed=99)
        b = QPUDevice(seed=99)
        ra = a.execute(native_ghz(a), shots=200)
        rb = b.execute(native_ghz(b), shots=200)
        assert ra.counts.to_dict() == rb.counts.to_dict()


class TestCalibration:
    def test_durations_match_paper(self, device):
        assert device.calibrate("quick") == pytest.approx(40 * MINUTE)
        assert device.calibrate("full") == pytest.approx(100 * MINUTE)

    def test_unknown_kind_rejected(self, device):
        with pytest.raises(DeviceError):
            device.calibrate("hyper")

    def test_calibration_improves_aged_device(self, device):
        device.advance_time(6 * 24 * 3600)
        before = device.calibration().median_cz_fidelity()
        device.calibrate("full")
        after = device.calibration().median_cz_fidelity()
        assert after > before

    def test_calibrating_seconds_tracked(self, device):
        device.calibrate("quick")
        assert device.calibrating_seconds == pytest.approx(40 * MINUTE)

    def test_status_restored_after_calibration(self, device):
        device.calibrate("quick")
        assert device.status is DeviceStatus.ONLINE


class TestAvailability:
    def test_offline_execute_rejected(self, device):
        device.set_status(DeviceStatus.OFFLINE)
        with pytest.raises(DeviceUnavailableError):
            device.execute(native_ghz(device))

    def test_offline_calibrate_rejected(self, device):
        device.set_status(DeviceStatus.MAINTENANCE)
        with pytest.raises(DeviceUnavailableError):
            device.calibrate("full")

    def test_drift_continues_while_offline(self, device):
        device.set_status(DeviceStatus.OFFLINE)
        t0 = device.time
        device.advance_time(3600.0)
        assert device.time == t0 + 3600.0


class TestIdleNoise:
    def test_idle_noise_hurts_fidelity(self):
        """Explicit long delays accumulate decoherence."""
        device = QPUDevice(seed=4)
        base = native_ghz(device, 3)
        slowed = QuantumCircuit(base.num_qubits, base.num_clbits, "slowed")
        for inst in base:
            if inst.name == "measure":
                # idle every qubit for 30 µs before readout
                slowed.append("delay", [inst.qubits[0]], [30e-6])
            slowed.append_instruction(inst)
        fast = device.execute(base, shots=4000)
        slow = device.execute(slowed, shots=4000)
        # T1 decay during the delay empties the |111⟩ branch (the GHZ
        # population proxy would hide this: decay *feeds* |000⟩)
        p111_fast = fast.counts.marginal([0, 1, 2]).probabilities().get("111", 0.0)
        p111_slow = slow.counts.marginal([0, 1, 2]).probabilities().get("111", 0.0)
        assert p111_slow < p111_fast - 0.05
