"""Cross-layer property-based tests (hypothesis).

These pin down the invariants the stack's correctness rests on:
serialization round-trips, unitarity preservation, sampler/probability
agreement, transpiler semantics, counts algebra, store monotonicity.
"""

import math

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.circuits import (
    QuantumCircuit,
    circuit_from_dict,
    circuit_to_dict,
    random_circuit,
)
from repro.simulator import Counts, sample_counts, simulate_statevector
from repro.simulator.sampler import ideal_probabilities

# ---------------------------------------------------------------------------
# strategies
# ---------------------------------------------------------------------------

seeds = st.integers(0, 10_000)
small_circuits = st.builds(
    lambda seed, n, depth: random_circuit(n, depth, seed=seed),
    seeds,
    st.integers(2, 4),
    st.integers(1, 25),
)


class TestSerializationProperties:
    @given(small_circuits)
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_identity(self, circuit):
        assert circuit_from_dict(circuit_to_dict(circuit)) == circuit

    @given(small_circuits)
    @settings(max_examples=25, deadline=None)
    def test_roundtrip_preserves_semantics(self, circuit):
        restored = circuit_from_dict(circuit_to_dict(circuit))
        p1, p2 = ideal_probabilities(circuit), ideal_probabilities(restored)
        for key in set(p1) | set(p2):
            assert p1.get(key, 0) == pytest.approx(p2.get(key, 0), abs=1e-12)


class TestSimulatorProperties:
    @given(seeds, st.integers(2, 4), st.integers(1, 30))
    @settings(max_examples=30, deadline=None)
    def test_unitarity_preserved(self, seed, n, depth):
        circuit = random_circuit(n, depth, seed=seed, measure=False)
        sv = simulate_statevector(circuit)
        assert sv.norm() == pytest.approx(1.0, abs=1e-9)

    @given(seeds, st.integers(2, 3), st.integers(1, 15))
    @settings(max_examples=15, deadline=None)
    def test_sampling_matches_ideal_distribution(self, seed, n, depth):
        circuit = random_circuit(n, depth, seed=seed)
        ideal = ideal_probabilities(circuit)
        counts = sample_counts(circuit, 30_000, rng=seed)
        empirical = counts.probabilities()
        for key in set(ideal) | set(empirical):
            assert empirical.get(key, 0.0) == pytest.approx(
                ideal.get(key, 0.0), abs=0.02
            )

    @given(seeds)
    @settings(max_examples=20, deadline=None)
    def test_probabilities_sum_to_one(self, seed):
        circuit = random_circuit(3, 20, seed=seed)
        probs = ideal_probabilities(circuit)
        assert sum(probs.values()) == pytest.approx(1.0, abs=1e-9)


class TestTranspilerProperties:
    @given(seeds, st.integers(2, 5))
    @settings(max_examples=15, deadline=None)
    def test_native_output_and_semantics(self, seed, n):
        from repro.qpu.params import nominal_calibration
        from repro.qpu.topology import Topology
        from repro.transpiler import transpile

        grid = Topology.square_grid(3, 3)
        snap = nominal_calibration(grid, rng=0)
        circuit = random_circuit(n, 12, seed=seed)
        result = transpile(circuit, grid, snapshot=snap)
        assert result.circuit.is_native()
        p1 = ideal_probabilities(circuit)
        p2 = ideal_probabilities(result.circuit)
        for key in set(p1) | set(p2):
            assert p1.get(key, 0) == pytest.approx(p2.get(key, 0), abs=1e-8)

    @given(seeds, st.integers(2, 5))
    @settings(max_examples=15, deadline=None)
    def test_layout_is_injective(self, seed, n):
        from repro.qpu.params import nominal_calibration
        from repro.qpu.topology import Topology
        from repro.transpiler import noise_adaptive_layout

        grid = Topology.square_grid(4, 5)
        snap = nominal_calibration(grid, rng=seed)
        circuit = random_circuit(n, 15, seed=seed)
        layout = noise_adaptive_layout(circuit, grid, snap)
        assert len(set(layout.values())) == n


class TestCountsProperties:
    count_dicts = st.dictionaries(
        st.sampled_from(["000", "001", "010", "011", "100", "101", "110", "111"]),
        st.integers(1, 500),
        min_size=1,
    )

    @given(count_dicts)
    @settings(max_examples=40, deadline=None)
    def test_marginal_preserves_shots(self, data):
        counts = Counts(data)
        assert counts.marginal([0, 2]).shots == counts.shots

    @given(count_dicts, count_dicts)
    @settings(max_examples=40, deadline=None)
    def test_merge_is_commutative_in_totals(self, d1, d2):
        a, b = Counts(d1), Counts(d2)
        assert a.merged(b).shots == b.merged(a).shots == a.shots + b.shots

    @given(count_dicts)
    @settings(max_examples=40, deadline=None)
    def test_expectation_bounded(self, data):
        counts = Counts(data)
        assert -1.0 <= counts.expectation_z() <= 1.0

    @given(count_dicts)
    @settings(max_examples=40, deadline=None)
    def test_hellinger_self_fidelity(self, data):
        counts = Counts(data)
        assert counts.hellinger_fidelity(counts) == pytest.approx(1.0)


class TestTelemetryProperties:
    @given(st.lists(st.floats(0.0, 1e6), min_size=1, max_size=60))
    @settings(max_examples=40, deadline=None)
    def test_store_accepts_sorted_inserts(self, offsets):
        from repro.telemetry import MetricStore

        store = MetricStore()
        t = 0.0
        for dt in offsets:
            t += dt
            store.insert("x", t, 1.0)
        assert store.num_points("x") == len(offsets)
        assert store.latest("x").timestamp == pytest.approx(t)

    @given(st.integers(1, 200), st.floats(1.0, 100.0))
    @settings(max_examples=30, deadline=None)
    def test_aggregate_mean_bounded_by_extremes(self, n, window):
        from repro.telemetry import MetricStore

        store = MetricStore()
        rng = np.random.default_rng(n)
        values = rng.normal(size=n)
        for i, v in enumerate(values):
            store.insert("x", float(i), float(v))
        _, agg = store.aggregate("x", 0.0, float(n), window)
        finite = agg[~np.isnan(agg)]
        if finite.size:
            assert finite.min() >= values.min() - 1e-9
            assert finite.max() <= values.max() + 1e-9


class TestSchedulerProperties:
    @given(
        st.lists(
            st.tuples(st.integers(1, 4), st.integers(10, 500)), min_size=1, max_size=20
        )
    )
    @settings(max_examples=25, deadline=None)
    def test_all_jobs_eventually_complete(self, specs):
        from repro.scheduler import ClusterScheduler, Job, Partition, Simulation

        sim = Simulation()
        cluster = ClusterScheduler(sim, [Partition("compute", 4)])
        jobs = [
            cluster.submit(
                Job(name=f"j{i}", num_nodes=nodes, runtime=float(rt), walltime_limit=float(rt) * 2)
            )
            for i, (nodes, rt) in enumerate(specs)
        ]
        sim.run_until(sum(rt for _, rt in specs) * 10.0 + 1000.0)
        from repro.scheduler import JobState

        assert all(j.state is JobState.COMPLETED for j in jobs)

    @given(
        st.lists(
            st.tuples(st.integers(1, 4), st.integers(10, 500)), min_size=2, max_size=15
        )
    )
    @settings(max_examples=20, deadline=None)
    def test_capacity_never_exceeded(self, specs):
        """At every start event, running node usage ≤ partition size."""
        from repro.scheduler import ClusterScheduler, Job, Partition, Simulation

        sim = Simulation()
        cluster = ClusterScheduler(sim, [Partition("compute", 4)])
        peak = [0]
        original_start = cluster._start

        def tracked_start(job):
            original_start(job)
            usage = sum(j.num_nodes for j, _ in cluster.running.values())
            peak[0] = max(peak[0], usage)

        cluster._start = tracked_start
        for i, (nodes, rt) in enumerate(specs):
            cluster.submit(
                Job(name=f"j{i}", num_nodes=nodes, runtime=float(rt), walltime_limit=float(rt) * 2)
            )
        sim.run_until(1e7)
        assert peak[0] <= 4


class TestGateAlgebraProperties:
    @given(st.floats(-math.pi, math.pi), st.floats(-math.pi, math.pi))
    @settings(max_examples=50, deadline=None)
    def test_prx_composition_same_axis(self, theta1, theta2):
        """Same-phase PRX pulses add their angles."""
        from repro.circuits.gates import prx_matrix

        phi = 0.7
        composed = prx_matrix(theta2, phi) @ prx_matrix(theta1, phi)
        direct = prx_matrix(theta1 + theta2, phi)
        np.testing.assert_allclose(composed, direct, atol=1e-10)

    @given(st.floats(-math.pi, math.pi), st.floats(-math.pi, math.pi))
    @settings(max_examples=50, deadline=None)
    def test_rz_commutes_with_cz(self, phi, theta):
        from repro.circuits.gates import rz_matrix, spec

        cz = spec("cz").matrix()
        rz0 = np.kron(np.eye(2), rz_matrix(phi))  # rz on qubit 0 (LSB)
        np.testing.assert_allclose(cz @ rz0, rz0 @ cz, atol=1e-12)
