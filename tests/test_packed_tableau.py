"""Bit-packed word-parallel tableau: parity with the uint8 tableau.

The packed engine's contract is *bit-identity*, not approximation: the
same gate sequence produces the same tableau (after unpacking), the same
measurement outcomes from the same RNG stream, the same coset
factorization (pivots, basis order, offsets), and therefore the same
seeded sampled counts — at 12, 100, and 512 qubits, and against the
dense engine wherever it can represent the state.  These tests pin all
of that, plus the popcount phase kernel against the scalar ``_g4`` and
the ``engine_mode(tableau_impl=...)`` policy plumbing.
"""

import numpy as np
import pytest

from repro.circuits import QuantumCircuit, ghz_circuit
from repro.errors import EngineModeError, SimulationError
from repro.simulator import (
    NoiseModel,
    Tableau,
    depolarizing_error,
    engine_mode,
    sample_counts,
)
from repro.simulator import stabilizer as stabilizer_mod
from repro.simulator.engines import TableauEngine
from repro.simulator.noise import thermal_relaxation_error
from repro.simulator.stabilizer import (
    PACKED_TABLEAU_THRESHOLD,
    CosetSupport,
    _g4,
    make_tableau,
)
from repro.simulator.stabilizer_packed import (
    PackedCosetSupport,
    PackedTableau,
    g4_words,
    pack_bit_matrix,
    pack_tableau,
    unpack_bit_matrix,
)
from tests.test_stabilizer import random_clifford_circuit


def assert_same_state(uint8_tab: Tableau, packed_tab: PackedTableau, msg=None):
    """The packed tableau unpacks to exactly the uint8 one."""
    u = packed_tab.unpack()
    assert np.array_equal(uint8_tab.x, u.x), msg
    assert np.array_equal(uint8_tab.z, u.z), msg
    assert np.array_equal(uint8_tab.r, u.r), msg


def _ghz_noise():
    nm = NoiseModel()
    nm.add_gate_error(depolarizing_error(0.01, 2), "cx")
    nm.add_gate_error(depolarizing_error(0.005, 1), "h")
    return nm


# ---------------------------------------------------------------------------
# popcount phase kernel
# ---------------------------------------------------------------------------


class TestG4Words:
    def test_exhaustive_single_position(self):
        """All 16 single-qubit Pauli pairs match the scalar g function."""
        for case in range(16):
            x1, z1, x2, z2 = (case >> 3) & 1, (case >> 2) & 1, (case >> 1) & 1, case & 1
            want = int(
                _g4(*(np.array([v]) for v in (x1, z1, x2, z2)))[0]
            ) % 4
            got = int(
                g4_words(*(np.array([v], dtype="<u8") for v in (x1, z1, x2, z2)))
            )
            assert want == got, case

    def test_random_vectors_across_word_boundaries(self):
        rng = np.random.default_rng(0)
        for n in (1, 7, 63, 64, 65, 127, 128, 200):
            for _ in range(10):
                x1, z1, x2, z2 = rng.integers(0, 2, (4, n)).astype(np.uint8)
                want = int(_g4(x1, z1, x2, z2).sum()) % 4
                got = int(
                    g4_words(
                        *(pack_bit_matrix(v[None, :])[0] for v in (x1, z1, x2, z2))
                    )
                )
                assert want == got, n

    def test_pack_unpack_roundtrip(self):
        rng = np.random.default_rng(1)
        for k in (1, 63, 64, 65, 130):
            bits = rng.integers(0, 2, (5, k)).astype(np.uint8)
            assert np.array_equal(unpack_bit_matrix(pack_bit_matrix(bits), k), bits)

    def test_popcount_lut_fallback_matches_active_kernel(self):
        """The byte-LUT popcount (the NumPy<2.0 fallback) agrees with
        whichever kernel the module selected at import."""
        from repro.simulator.stabilizer_packed import (
            _popcount_last_axis,
            _popcount_last_axis_lut,
        )

        rng = np.random.default_rng(3)
        for shape in ((4,), (3, 7), (5, 2)):
            words = rng.integers(0, 1 << 63, size=shape, dtype=np.uint64).astype("<u8")
            assert np.array_equal(
                _popcount_last_axis(words), _popcount_last_axis_lut(words)
            ), shape


# ---------------------------------------------------------------------------
# tableau-level parity
# ---------------------------------------------------------------------------


class TestPackedTableauParity:
    def test_initial_state_and_adapters(self):
        for n in (1, 5, 64, 130):
            t, p = Tableau(n), PackedTableau(n)
            assert_same_state(t, p)
            assert_same_state(t, pack_tableau(t))

    def test_random_clifford_circuits_identical_tableaux(self):
        rng = np.random.default_rng(11)
        for trial in range(10):
            n = int(rng.integers(2, 9))
            qc = random_clifford_circuit(n, 40, rng)
            t, p = Tableau(n), PackedTableau(n)
            for inst in qc:
                t.apply_instruction(inst)
                p.apply_instruction(inst)
            assert_same_state(t, p, trial)

    def test_gate_parity_across_word_boundary(self):
        """Widths straddling the 64-bit word boundary keep exact parity."""
        rng = np.random.default_rng(13)
        for n in (63, 64, 65):
            qc = random_clifford_circuit(n, 120, rng)
            t, p = Tableau(n), PackedTableau(n)
            for inst in qc:
                t.apply_instruction(inst)
                p.apply_instruction(inst)
            assert_same_state(t, p, n)

    def test_pauli_injection_parity(self):
        rng = np.random.default_rng(17)
        qc = random_clifford_circuit(6, 30, rng)
        t, p = Tableau(6), PackedTableau(6)
        for inst in qc:
            t.apply_instruction(inst)
            p.apply_instruction(inst)
        for pauli, qs in (("X", [0]), ("ZZ", [1, 4]), ("IXYZ", [0, 2, 3, 5])):
            t.apply_pauli(pauli, qs)
            p.apply_pauli(pauli, qs)
            assert_same_state(t, p, pauli)

    def test_measure_reset_collapse_parity(self):
        """Seeded measurement/reset sequences: same outcomes, same RNG
        consumption, same post-collapse tableaux."""
        rng = np.random.default_rng(23)
        for trial in range(12):
            n = int(rng.integers(2, 7))
            qc = random_clifford_circuit(n, 3 * n, rng)
            t = Tableau(n)
            for inst in qc:
                t.apply_instruction(inst)
            p = pack_tableau(t)
            r1 = np.random.default_rng(trial)
            r2 = np.random.default_rng(trial)
            for q in range(n):
                assert t.measure(q, r1) == p.measure(q, r2), (trial, q)
                assert_same_state(t, p, (trial, q))
            t.reset(0, r1)
            p.reset(0, r2)
            assert_same_state(t, p, trial)
            # both consumed the same number of draws
            assert r1.random() == r2.random()

    def test_error_injection_through_engine_protocol(self):
        """inject() on the tableau engine behaves identically for both
        implementations, including the thermal-reset collapse branch."""
        from repro.simulator.engines.tableau import inject_into_tableau

        err = thermal_relaxation_error(30e-6, 20e-6, 5e-6).compose(
            depolarizing_error(0.3, 1)
        )
        qc = ghz_circuit(5, measure=False)
        inst = qc.instructions[0]  # h on qubit 0
        for term_index in range(len(err.terms)):
            t = Tableau(5).apply("h", [0]).apply("cx", [0, 1])
            p = pack_tableau(t)
            st = inject_into_tableau(t, inst, err, term_index)
            sp = inject_into_tableau(p, inst, err, term_index)
            assert st == sp, term_index
            assert_same_state(t, p, term_index)

    def test_expectation_parity(self):
        rng = np.random.default_rng(29)
        for trial in range(6):
            n = int(rng.integers(2, 8))
            qc = random_clifford_circuit(n, 4 * n, rng)
            t = Tableau(n)
            for inst in qc:
                t.apply_instruction(inst)
            p = pack_tableau(t)
            for _ in range(20):
                pauli = "".join(rng.choice(list("IXYZ"), n))
                assert t.expectation_pauli(pauli, range(n)) == p.expectation_pauli(
                    pauli, range(n)
                ), (trial, pauli)
            assert t.expectation_z(range(n)) == p.expectation_z(range(n))

    def test_conversion_adapters_match_unpacked(self):
        t = Tableau(4).apply("h", [0]).apply("cx", [0, 1]).apply("s", [2])
        p = pack_tableau(t)
        ti, ta = t.coset_amplitudes()
        pi, pa = p.coset_amplitudes()
        assert np.array_equal(ti, pi)
        assert np.allclose(ta, pa)
        assert np.allclose(t.to_statevector().data, p.to_statevector().data)
        assert np.allclose(t.probabilities(), p.probabilities())

    def test_validation_errors(self):
        p = PackedTableau(3)
        with pytest.raises(SimulationError):
            p.apply("t", [0])
        with pytest.raises(SimulationError):
            p.apply("h", [7])
        with pytest.raises(SimulationError):
            p.apply_pauli("Q", [0])
        with pytest.raises(SimulationError):
            PackedTableau(0)


# ---------------------------------------------------------------------------
# coset factorization parity
# ---------------------------------------------------------------------------


class TestPackedCosetSupport:
    def test_factorization_matches_unpacked(self):
        rng = np.random.default_rng(31)
        for n in (3, 12, 63, 65, 100):
            qc = random_clifford_circuit(n, 3 * n, rng)
            t = Tableau(n)
            for inst in qc:
                t.apply_instruction(inst)
            p = pack_tableau(t)
            su, sp = CosetSupport(t), PackedCosetSupport(p)
            assert su.dimension == sp.dimension, n
            if sp.dimension:
                assert np.array_equal(
                    su.basis, unpack_bit_matrix(sp.basis_words, n)
                ), n
            want = su.offset(t.r[n:])
            got = unpack_bit_matrix(
                sp.offset_words(p._signs_words())[None, :], n
            )[0]
            assert np.array_equal(want, got), n

    def test_sample_bits_identical(self):
        rng = np.random.default_rng(37)
        for n in (3, 12, 65):
            qc = random_clifford_circuit(n, 3 * n, rng)
            t = Tableau(n)
            for inst in qc:
                t.apply_instruction(inst)
            p = pack_tableau(t)
            bu = t.sample(96, np.random.default_rng(5), support=CosetSupport(t))
            bp = p.sample(96, np.random.default_rng(5), support=PackedCosetSupport(p))
            assert np.array_equal(bu, bp), n
            # qubit selection applies the same column contract
            qs = [n - 1, 0]
            bu = t.sample(17, np.random.default_rng(8), qubits=qs)
            bp = p.sample(17, np.random.default_rng(8), qubits=qs)
            assert np.array_equal(bu, bp), n


# ---------------------------------------------------------------------------
# end-to-end seeded counts
# ---------------------------------------------------------------------------


class TestSeededCountsBitExact:
    @pytest.mark.parametrize("num_qubits,shots", [(12, 256), (100, 512), (512, 96)])
    def test_ghz_counts_identical_both_impls(self, num_qubits, shots):
        qc = ghz_circuit(num_qubits)
        with engine_mode("stabilizer", tableau_impl="unpacked"):
            a = sample_counts(qc, shots, noise=_ghz_noise(), rng=7)
        with engine_mode("stabilizer", tableau_impl="packed"):
            b = sample_counts(qc, shots, noise=_ghz_noise(), rng=7)
        assert a.to_dict() == b.to_dict()

    def test_random_clifford_counts_identical_both_impls(self):
        rng = np.random.default_rng(43)
        nm = NoiseModel()
        nm.add_gate_error(depolarizing_error(0.02, 1), "h")
        nm.add_gate_error(depolarizing_error(0.02, 2), "cx")
        for trial in range(6):
            n = int(rng.integers(2, 8))
            qc = random_clifford_circuit(n, 25, rng, measure=True)
            seed = int(rng.integers(1 << 30))
            with engine_mode("stabilizer", tableau_impl="unpacked"):
                a = sample_counts(qc, 192, noise=nm, rng=seed)
            with engine_mode("stabilizer", tableau_impl="packed"):
                b = sample_counts(qc, 192, noise=nm, rng=seed)
            assert a.to_dict() == b.to_dict(), trial

    def test_thermal_reset_noise_identical_both_impls(self):
        nm = NoiseModel()
        nm.add_gate_error(thermal_relaxation_error(30e-6, 20e-6, 5e-6), "h")
        nm.add_gate_error(
            thermal_relaxation_error(30e-6, 20e-6, 5e-6, operand=1).compose(
                depolarizing_error(0.02, 2)
            ),
            "cx",
        )
        qc = ghz_circuit(8)
        for seed in (1, 5):
            with engine_mode("stabilizer", tableau_impl="unpacked"):
                a = sample_counts(qc, 256, noise=nm, rng=seed)
            with engine_mode("stabilizer", tableau_impl="packed"):
                b = sample_counts(qc, 256, noise=nm, rng=seed)
            assert a.to_dict() == b.to_dict(), seed

    def test_per_shot_path_identical_both_impls(self):
        qc = QuantumCircuit(3)
        qc.h(0)
        qc.cx(0, 1)
        qc.measure(0)
        qc.x(0)
        qc.reset(2)
        qc.h(2)
        qc.cx(1, 2)
        qc.measure_all()
        nm = NoiseModel()
        nm.add_gate_error(depolarizing_error(0.05, 1), "h")
        for seed in (0, 42):
            with engine_mode("stabilizer", tableau_impl="unpacked"):
                a = sample_counts(qc, 192, noise=nm, rng=seed)
            with engine_mode("stabilizer", tableau_impl="packed"):
                b = sample_counts(qc, 192, noise=nm, rng=seed)
            assert a.to_dict() == b.to_dict(), seed

    def test_packed_matches_dense_engine_exactly(self):
        """The full PR-2 contract transfers to the packed tableau: seeded
        Clifford counts are bit-identical to the dense engine."""
        qc = ghz_circuit(12)
        with engine_mode("fast"):
            dense = sample_counts(qc, 384, noise=_ghz_noise(), rng=9)
        with engine_mode("stabilizer", tableau_impl="packed"):
            packed = sample_counts(qc, 384, noise=_ghz_noise(), rng=9)
        assert dense.to_dict() == packed.to_dict()


# ---------------------------------------------------------------------------
# policy plumbing
# ---------------------------------------------------------------------------


class TestImplementationPolicy:
    def test_factory_threshold(self):
        assert isinstance(make_tableau(PACKED_TABLEAU_THRESHOLD - 1), Tableau)
        assert isinstance(make_tableau(PACKED_TABLEAU_THRESHOLD), PackedTableau)
        assert isinstance(make_tableau(2, impl="packed"), PackedTableau)
        assert isinstance(make_tableau(500, impl="unpacked"), Tableau)
        with pytest.raises(SimulationError):
            make_tableau(2, impl="no-such-impl")

    def test_engine_mode_sets_and_restores_policy(self):
        assert stabilizer_mod.TABLEAU_IMPL == "auto"
        with engine_mode("stabilizer", tableau_impl="packed"):
            assert stabilizer_mod.TABLEAU_IMPL == "packed"
            eng = TableauEngine(ghz_circuit(3, measure=False))
            assert isinstance(eng._tab, PackedTableau)
        assert stabilizer_mod.TABLEAU_IMPL == "auto"

    def test_engine_mode_rejects_bad_impl_before_mutation(self):
        with pytest.raises(EngineModeError):
            with engine_mode("stabilizer", tableau_impl="bogus"):
                pass  # pragma: no cover
        assert stabilizer_mod.TABLEAU_IMPL == "auto"

    def test_auto_policy_picks_packed_above_threshold(self):
        eng = TableauEngine(ghz_circuit(PACKED_TABLEAU_THRESHOLD + 1, measure=False))
        assert isinstance(eng._tab, PackedTableau)
        eng = TableauEngine(ghz_circuit(8, measure=False))
        assert isinstance(eng._tab, Tableau)

    def test_fork_preserves_packed_independence(self):
        eng = TableauEngine(ghz_circuit(70, measure=False))
        eng.advance(list(ghz_circuit(70, measure=False)))
        fork = eng.fork()
        fork._tab.apply_pauli("X", [0])
        assert eng._tab._r != fork._tab._r
        assert eng._tab._xc == fork._tab._xc  # structure shared by value
