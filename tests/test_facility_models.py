"""Tests for power, cooling, network, cryostat, and outage models."""

import math

import numpy as np
import pytest

from repro.errors import CryostatError, FacilityError
from repro.facility.cooling import (
    AMBIENT_DELTA_LIMIT_PER_DAY,
    CoolingWaterSpec,
    ReadoutPhaseModel,
    ambient_stability_ok,
    cooling_envelope_table,
    cryostat_compatible,
    hpc_rack_compatible,
    readout_error_vs_ambient,
)
from repro.facility.cryostat import (
    BASE_TEMPERATURE,
    CALIBRATION_SURVIVES_BELOW,
    COOLDOWN_MAX,
    COOLDOWN_MIN,
    ROOM_TEMPERATURE,
    TIME_TO_EXCEED_1K,
    Cryostat,
    CryostatState,
    cooldown_duration,
    warmup_temperature,
)
from repro.facility.network import (
    ETHERNET_LINK,
    continuous_data_rate,
    link_utilization,
    measured_data_rate,
    scaling_table,
)
from repro.facility.outage import (
    FacilityConfig,
    OutageScenario,
    OutageType,
    downtime_comparison,
    simulate_outage,
)
from repro.facility.power import (
    HPCCabinetModel,
    QPUPowerModel,
    QPUPowerPhase,
    fits_in_hpc_budget,
    power_comparison,
)
from repro.utils.units import DAY, HOUR, KILOWATT, MINUTE


class TestPower:
    def test_peak_is_30kw(self):
        assert QPUPowerModel().draw(QPUPowerPhase.COOLDOWN) == pytest.approx(30 * KILOWATT)

    def test_cabinet_is_140kw(self):
        assert HPCCabinetModel().real_power == pytest.approx(140 * KILOWATT)

    def test_cooling_envelope_300kw_per_cabinet(self):
        assert HPCCabinetModel().cooling_capability_per_cabinet == pytest.approx(
            300 * KILOWATT
        )

    def test_comparison_ratios(self):
        rows = power_comparison()
        by_system = {r["system"]: r for r in rows}
        cab = by_system["Cray EX4000 cabinet (max draw)"]
        assert cab["vs_qpu_peak"] == pytest.approx(140.0 / 30.0)

    def test_paper_conclusion_holds(self):
        assert fits_in_hpc_budget()

    def test_energy_schedule(self):
        m = QPUPowerModel()
        e = m.energy([(QPUPowerPhase.COOLDOWN, 3600.0), (QPUPowerPhase.STEADY, 3600.0)])
        assert e == pytest.approx((30e3 + 22e3) * 3600.0)

    def test_energy_rejects_negative_duration(self):
        with pytest.raises(FacilityError):
            QPUPowerModel().energy([(QPUPowerPhase.STEADY, -1.0)])

    def test_heat_split(self):
        m = QPUPowerModel()
        total = m.heat_to_air(QPUPowerPhase.STEADY) + m.heat_to_water(QPUPowerPhase.STEADY)
        assert total <= m.draw(QPUPowerPhase.STEADY)


class TestCooling:
    def test_chilled_loop_serves_qpu(self):
        chilled = CoolingWaterSpec("chilled", 18.0, 2.0, 1e5)
        assert cryostat_compatible(chilled)

    def test_warm_loop_rejected_for_qpu_but_fine_for_racks(self):
        """Section 2.3's central contrast."""
        warm = CoolingWaterSpec("warm", 40.0, 3.0, 1e6)
        assert not cryostat_compatible(warm)
        assert hpc_rack_compatible(warm)

    def test_envelope_table_shape(self):
        table = cooling_envelope_table()
        assert any(r["qpu_ok"] and r["hpc_rack_ok"] for r in table)
        assert any(not r["qpu_ok"] and r["hpc_rack_ok"] for r in table)

    def test_ambient_stability_criterion(self):
        steady = 21.0 + 0.3 * np.sin(np.linspace(0, 20, 2000))
        assert ambient_stability_ok(steady, sample_period=60.0)
        swinging = 21.0 + 1.5 * np.sin(np.linspace(0, 20, 2000))
        assert not ambient_stability_ok(swinging, sample_period=60.0)

    def test_readout_error_grows_quadratically(self):
        model = ReadoutPhaseModel()
        e1 = model.added_readout_error(1.0)
        e2 = model.added_readout_error(2.0)
        assert e2 == pytest.approx(4.0 * e1)

    def test_within_limit_penalty_small(self):
        """Inside ΔT < 1 °C, the added readout error is negligible."""
        rows = readout_error_vs_ambient()
        within = next(r for r in rows if r["delta_t_c"] == 1.0)
        assert within["added_readout_error"] < 2e-3


class TestCryostat:
    def test_two_minutes_to_1k(self):
        """Paper: 'it takes two minutes to exceed this temperature'."""
        assert warmup_temperature(TIME_TO_EXCEED_1K) == pytest.approx(
            CALIBRATION_SURVIVES_BELOW
        )
        assert warmup_temperature(TIME_TO_EXCEED_1K - 5.0) < 1.0
        assert warmup_temperature(TIME_TO_EXCEED_1K + 60.0) > 1.0

    def test_warmup_approaches_room_temperature(self):
        assert warmup_temperature(30 * DAY) == pytest.approx(ROOM_TEMPERATURE, rel=0.01)

    def test_warmup_rejects_negative(self):
        with pytest.raises(CryostatError):
            warmup_temperature(-1.0)

    def test_cooldown_bounds_match_paper(self):
        """2–5 days depending on the temperature reached."""
        assert cooldown_duration(ROOM_TEMPERATURE) == pytest.approx(COOLDOWN_MAX)
        assert cooldown_duration(4.0) == pytest.approx(COOLDOWN_MIN)
        assert COOLDOWN_MIN == 2 * DAY and COOLDOWN_MAX == 5 * DAY

    def test_cooldown_monotone_in_start_temperature(self):
        temps = [0.5, 2.0, 10.0, 77.0, 300.0]
        durations = [cooldown_duration(t) for t in temps]
        assert durations == sorted(durations)

    def test_sub_1k_needs_only_stabilization(self):
        assert cooldown_duration(0.5) == pytest.approx(2 * HOUR)

    def test_below_base_rejected(self):
        with pytest.raises(CryostatError):
            cooldown_duration(0.001)

    def test_state_machine_fault_and_recover(self):
        cryo = Cryostat()
        assert cryo.operational
        cryo.fail_cooling()
        cryo.advance(10 * MINUTE)
        assert cryo.state is CryostatState.WARMING
        assert not cryo.calibration_survived
        duration = cryo.restore_cooling()
        assert duration >= 2 * DAY
        cryo.advance(duration + 1.0)
        assert cryo.operational
        assert cryo.temperature == pytest.approx(BASE_TEMPERATURE)

    def test_brief_fault_calibration_survives(self):
        cryo = Cryostat()
        cryo.fail_cooling()
        cryo.advance(60.0)  # under the 2-minute horizon
        assert cryo.calibration_survived

    def test_vacuum_holds_then_lost(self):
        cryo = Cryostat()
        cryo.fail_cooling()
        cryo.advance(7 * DAY)
        assert cryo.vacuum_intact
        cryo.advance(30 * DAY)
        assert not cryo.vacuum_intact

    def test_restore_when_cold_is_noop(self):
        assert Cryostat().restore_cooling() == 0.0


class TestNetwork:
    def test_paper_headline_number(self):
        """1/300 µs × 20 × 8 bit = 533 kbit/s."""
        rate = continuous_data_rate(20)
        assert rate == pytest.approx(533.33e3, rel=1e-3)

    def test_well_below_gigabit(self):
        assert link_utilization(20) < 0.001

    def test_linear_scaling(self):
        """Section 2.4: data rate grows linearly with qubit count."""
        r20 = continuous_data_rate(20)
        assert continuous_data_rate(54) == pytest.approx(r20 * 54 / 20)
        assert continuous_data_rate(150) == pytest.approx(r20 * 150 / 20)

    def test_scaling_table_rows(self):
        rows = scaling_table()
        assert [r["num_qubits"] for r in rows] == [20.0, 54.0, 150.0]
        assert rows[-1]["link_utilization_pct"] < 1.0  # even 150q is fine

    def test_invalid_inputs(self):
        with pytest.raises(FacilityError):
            continuous_data_rate(0)
        with pytest.raises(FacilityError):
            continuous_data_rate(20, shot_period=0.0)

    def test_measured_rate_below_analytic(self, device):
        """Control-software overhead keeps the measured rate below the
        continuous bound (the paper's 'additional inefficiency')."""
        from repro.circuits import ghz_circuit
        from repro.transpiler import transpile

        qc = transpile(ghz_circuit(5), device.topology, snapshot=device.calibration()).circuit
        results = [device.execute(qc, shots=256) for _ in range(3)]
        measured = measured_data_rate(results)
        analytic = continuous_data_rate(5)
        assert 0 < measured < analytic

    def test_measured_rate_requires_jobs(self):
        with pytest.raises(FacilityError):
            measured_data_rate([])


class TestOutage:
    def test_redundancy_absorbs_cooling_fault(self):
        report = simulate_outage(
            OutageScenario(OutageType.COOLING_WATER_OVERTEMP, 30 * MINUTE),
            FacilityConfig(redundant_cooling=True),
        )
        assert report.absorbed_by_redundancy
        assert report.total_downtime == 0.0

    def test_no_redundancy_multi_day_downtime(self):
        report = simulate_outage(
            OutageScenario(OutageType.COOLING_WATER_OVERTEMP, 30 * MINUTE),
            FacilityConfig(redundant_cooling=False),
        )
        assert not report.calibration_survived
        assert report.total_downtime > 2 * DAY

    def test_ups_bridges_short_power_blip(self):
        report = simulate_outage(
            OutageScenario(OutageType.POWER_LOSS, 5 * MINUTE),
            FacilityConfig(ups_present=True),
        )
        assert report.absorbed_by_redundancy

    def test_power_loss_beyond_ups(self):
        report = simulate_outage(
            OutageScenario(OutageType.POWER_LOSS, 2 * HOUR),
            FacilityConfig(ups_present=True),
        )
        assert not report.absorbed_by_redundancy
        # UPS bought 30 min: warming lasted 1.5 h → tens of kelvin, full recal
        assert not report.calibration_survived
        assert any("full recalibration" in s.name for s in report.steps)

    def test_sub_1k_excursion_quick_recovery(self):
        """Section 3.5: below 1 K the automated calibration restores it."""
        report = simulate_outage(
            OutageScenario(OutageType.COOLING_PUMP_FAILURE, 60.0),
            FacilityConfig(redundant_cooling=False),
        )
        assert report.calibration_survived
        assert report.total_downtime < 6 * HOUR
        assert any("automated calibration" in s.name for s in report.steps)

    def test_planned_maintenance_no_thermal_impact(self):
        report = simulate_outage(
            OutageScenario(OutageType.PLANNED_MAINTENANCE, 8 * HOUR)
        )
        assert report.calibration_survived
        assert report.peak_temperature == pytest.approx(0.010)

    def test_downtime_comparison_ordering(self):
        """Lesson 3: redundancy beats no-redundancy at any fault length."""
        for minutes in (5, 60, 360):
            rows = dict(downtime_comparison(minutes * MINUTE))
            assert rows["redundant"] <= rows["no redundancy"]
            assert rows["no redundancy"] > DAY

    def test_negative_duration_rejected(self):
        with pytest.raises(Exception):
            OutageScenario(OutageType.POWER_LOSS, -1.0)

    def test_summary_renders(self):
        report = simulate_outage(
            OutageScenario(OutageType.COOLING_PUMP_FAILURE, HOUR),
            FacilityConfig(redundant_cooling=False),
        )
        text = report.summary()
        assert "downtime" in text and "cooldown" in text
