"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.qpu import QPUDevice, Topology, nominal_calibration


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "fuzz: differential cross-engine fuzz tests (short budget by "
        "default; deep budget with --fuzz-deep)",
    )
    config.addinivalue_line(
        "markers",
        "faults: fault-injection recovery tests (`pytest -m faults` runs "
        "just the resilience protocol; tier-1 runs the fast sample; "
        "--faults-deep widens the recovery sweep)",
    )


def pytest_addoption(parser):
    parser.addoption(
        "--fuzz-deep",
        action="store_true",
        default=False,
        help="run the equivalence fuzzer at its deep budget "
        "(hundreds of circuits instead of the tier-1 sample)",
    )
    parser.addoption(
        "--faults-deep",
        action="store_true",
        default=False,
        help="run the fault-injection recovery sweep at its deep budget "
        "(more seeds × fault sites than the tier-1 sample)",
    )


@pytest.fixture
def fuzz_deep(request) -> bool:
    return bool(request.config.getoption("--fuzz-deep"))


@pytest.fixture
def faults_deep(request) -> bool:
    return bool(request.config.getoption("--faults-deep"))


def assert_close_up_to_phase(a: np.ndarray, b: np.ndarray, atol: float = 1e-8) -> None:
    """Assert two matrices/vectors are equal up to a global phase."""
    a = np.asarray(a)
    b = np.asarray(b)
    assert a.shape == b.shape, f"shape mismatch {a.shape} vs {b.shape}"
    idx = np.unravel_index(np.argmax(np.abs(b)), b.shape)
    ref = b[idx]
    assert abs(ref) > 1e-12, "reference matrix is (numerically) zero"
    phase = a[idx] / ref
    assert abs(abs(phase) - 1.0) < 1e-6, f"amplitude mismatch, |phase| = {abs(phase)}"
    np.testing.assert_allclose(a, phase * b, atol=atol)


def random_unitary_2x2(rng: np.random.Generator) -> np.ndarray:
    """Haar-ish random single-qubit unitary."""
    z = rng.normal(size=(2, 2)) + 1j * rng.normal(size=(2, 2))
    q, r = np.linalg.qr(z)
    return q * (np.diag(r) / np.abs(np.diag(r)))


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def grid20() -> Topology:
    return Topology.iqm_garnet_like()


@pytest.fixture
def device() -> QPUDevice:
    return QPUDevice(seed=42)


@pytest.fixture
def snapshot(grid20):
    return nominal_calibration(grid20, rng=7)
