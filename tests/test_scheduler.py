"""Tests for the discrete-event engine, jobs, cluster, and QRM."""

import pytest

from repro.circuits import ghz_circuit
from repro.errors import (
    JobError,
    QueueError,
    ReservationError,
    SchedulerError,
)
from repro.qpu import DeviceStatus, QPUDevice
from repro.scheduler import (
    ClusterScheduler,
    Job,
    JobState,
    Partition,
    QuantumResourceManager,
    Reservation,
    Simulation,
)
from repro.utils.units import HOUR, MINUTE


class TestSimulation:
    def test_events_fire_in_order(self):
        sim = Simulation()
        log = []
        sim.schedule(5.0, lambda s: log.append("b"))
        sim.schedule(1.0, lambda s: log.append("a"))
        sim.schedule(9.0, lambda s: log.append("c"))
        sim.run_until(10.0)
        assert log == ["a", "b", "c"]

    def test_simultaneous_events_fifo(self):
        sim = Simulation()
        log = []
        for i in range(5):
            sim.schedule(1.0, lambda s, i=i: log.append(i))
        sim.run_until(2.0)
        assert log == [0, 1, 2, 3, 4]

    def test_past_scheduling_rejected(self):
        sim = Simulation(start_time=10.0)
        with pytest.raises(SchedulerError):
            sim.schedule(5.0, lambda s: None)

    def test_cancel(self):
        sim = Simulation()
        log = []
        handle = sim.schedule(1.0, lambda s: log.append("x"))
        handle.cancel()
        sim.run_until(2.0)
        assert log == []

    def test_run_until_advances_clock(self):
        sim = Simulation()
        sim.run_until(100.0)
        assert sim.now == 100.0

    def test_events_scheduled_during_events(self):
        sim = Simulation()
        log = []

        def first(s):
            s.schedule_in(1.0, lambda s2: log.append("second"))

        sim.schedule(1.0, first)
        sim.run_until(5.0)
        assert log == ["second"]

    def test_negative_delay_rejected(self):
        with pytest.raises(SchedulerError):
            Simulation().schedule_in(-1.0, lambda s: None)


class TestJobStateMachine:
    def test_happy_path(self):
        j = Job(name="x")
        j.mark_submitted(0.0)
        j.mark_started(5.0)
        j.mark_completed(15.0)
        assert j.wait_time == 5.0
        assert j.turnaround == 15.0

    def test_illegal_transition(self):
        j = Job(name="x")
        with pytest.raises(JobError):
            j.mark_completed(1.0)

    def test_double_submit_rejected(self):
        j = Job(name="x")
        j.mark_submitted(0.0)
        with pytest.raises(JobError):
            j.mark_submitted(1.0)

    def test_requeue_cycle(self):
        j = Job(name="x")
        j.mark_submitted(0.0)
        j.mark_started(1.0)
        j.mark_requeued(2.0, "outage")
        assert j.state is JobState.REQUEUED
        j.mark_submitted(3.0)
        assert j.state is JobState.PENDING
        assert j.requeue_count == 1

    def test_validation(self):
        with pytest.raises(JobError):
            Job(name="x", num_nodes=0)
        with pytest.raises(JobError):
            Job(name="x", walltime_limit=0.0)


class TestCluster:
    def _cluster(self, nodes=8, backfill=True):
        sim = Simulation()
        cluster = ClusterScheduler(sim, [Partition("compute", nodes)], backfill=backfill)
        return sim, cluster

    def test_jobs_run_and_complete(self):
        sim, cluster = self._cluster()
        jobs = [
            cluster.submit(Job(name=f"j{i}", num_nodes=2, runtime=100, walltime_limit=200))
            for i in range(4)
        ]
        sim.run_until(1000)
        assert all(j.state is JobState.COMPLETED for j in jobs)

    def test_capacity_respected(self):
        sim, cluster = self._cluster(nodes=4)
        jobs = [
            cluster.submit(Job(name=f"j{i}", num_nodes=4, runtime=100, walltime_limit=200))
            for i in range(3)
        ]
        sim.run_until(1000)
        starts = sorted(j.started_at for j in jobs)
        assert starts == [0.0, 100.0, 200.0]

    def test_unknown_partition_rejected(self):
        _, cluster = self._cluster()
        with pytest.raises(QueueError):
            cluster.submit(Job(name="x", partition="gpu"))

    def test_oversized_job_rejected(self):
        _, cluster = self._cluster(nodes=4)
        with pytest.raises(QueueError):
            cluster.submit(Job(name="x", num_nodes=8))

    def test_walltime_kill(self):
        sim, cluster = self._cluster()
        job = cluster.submit(Job(name="runaway", runtime=500, walltime_limit=100))
        sim.run_until(1000)
        assert job.state is JobState.FAILED
        assert "walltime" in job.failure_reason

    def test_priority_ordering(self):
        sim, cluster = self._cluster(nodes=2)
        blocker = cluster.submit(Job(name="blocker", num_nodes=2, runtime=100, walltime_limit=150))
        low = cluster.submit(Job(name="low", num_nodes=2, runtime=10, walltime_limit=50, priority=0))
        high = cluster.submit(Job(name="high", num_nodes=2, runtime=10, walltime_limit=50, priority=5))
        sim.run_until(1000)
        assert high.started_at < low.started_at

    def test_backfill_lets_small_jobs_jump(self):
        sim, cluster = self._cluster(nodes=4)
        cluster.submit(Job(name="running", num_nodes=3, runtime=100, walltime_limit=120))
        big = cluster.submit(Job(name="big", num_nodes=4, runtime=50, walltime_limit=60, priority=10))
        small = cluster.submit(Job(name="small", num_nodes=1, runtime=30, walltime_limit=40))
        sim.run_until(1000)
        # small fits in the free node before big's 100 s shadow: backfilled
        assert small.started_at < big.started_at
        assert small.started_at == 0.0

    def test_fifo_mode_blocks_jumping(self):
        sim, cluster = self._cluster(nodes=4, backfill=False)
        cluster.submit(Job(name="running", num_nodes=3, runtime=100, walltime_limit=120))
        big = cluster.submit(Job(name="big", num_nodes=4, runtime=50, walltime_limit=60, priority=10))
        small = cluster.submit(Job(name="small", num_nodes=1, runtime=30, walltime_limit=40))
        sim.run_until(1000)
        # without backfill, small waits behind big
        assert small.started_at >= big.started_at

    def test_reservation_blocks_jobs(self):
        sim, cluster = self._cluster(nodes=4)
        cluster.reserve(Reservation("compute", 0.0, 500.0, 4, "maintenance"))
        job = cluster.submit(Job(name="x", num_nodes=2, runtime=10, walltime_limit=600))
        sim.run_until(200)
        assert job.state is JobState.PENDING  # blocked by reservation
        sim.run_until(1000)
        cluster.kick()
        sim.run_until(1200)
        assert job.state is JobState.COMPLETED

    def test_reservation_validation(self):
        _, cluster = self._cluster()
        with pytest.raises(ReservationError):
            cluster.reserve(Reservation("compute", 10.0, 5.0, 1))
        with pytest.raises(ReservationError):
            cluster.reserve(Reservation("gpu", 0.0, 10.0, 1))

    def test_requeue_running(self):
        sim, cluster = self._cluster()
        job = cluster.submit(Job(name="x", num_nodes=2, runtime=100, walltime_limit=200))
        sim.run_until(10)
        victims = cluster.requeue_running("compute", "power outage")
        assert victims == [job]
        assert job.requeue_count == 1
        # with free nodes, the scheduler restarts it immediately
        assert job.state is JobState.RUNNING
        assert job.started_at == pytest.approx(10.0)
        sim.run_until(1000)
        assert job.state is JobState.COMPLETED
        # full runtime after the restart, not the stale pre-outage finish
        assert job.finished_at == pytest.approx(110.0)

    def test_utilization_accounting(self):
        sim, cluster = self._cluster(nodes=4)
        cluster.submit(Job(name="x", num_nodes=4, runtime=500, walltime_limit=600))
        sim.run_until(1000)
        assert cluster.utilization("compute", 1000) == pytest.approx(0.5)


class TestQRM:
    def test_submit_and_run(self, device):
        qrm = QuantumResourceManager(device)
        job = qrm.submit(ghz_circuit(3), shots=128)
        assert qrm.queue_length == 1
        done = qrm.run_next()
        assert done is job
        assert job.state is JobState.COMPLETED
        assert job.result.counts.shots == 128

    def test_priority_order(self, device):
        qrm = QuantumResourceManager(device)
        low = qrm.submit(ghz_circuit(2), shots=32, priority=0)
        high = qrm.submit(ghz_circuit(2), shots=32, priority=9)
        assert qrm.run_next() is high

    def test_drain(self, device):
        qrm = QuantumResourceManager(device)
        for _ in range(3):
            qrm.submit(ghz_circuit(2), shots=32)
        assert qrm.drain() == 3
        assert qrm.idle()

    def test_offline_device_requeues(self, device):
        qrm = QuantumResourceManager(device)
        job = qrm.submit(ghz_circuit(2), shots=32)
        device.set_status(DeviceStatus.OFFLINE)
        returned = qrm.run_next()
        assert returned.state is JobState.PENDING
        assert qrm.stats.jobs_requeued == 1
        device.set_status(DeviceStatus.ONLINE)
        qrm.drain()
        assert job.state is JobState.COMPLETED

    def test_drain_stops_when_device_down(self, device):
        qrm = QuantumResourceManager(device)
        qrm.submit(ghz_circuit(2), shots=32)
        qrm.submit(ghz_circuit(2), shots=32)
        device.set_status(DeviceStatus.OFFLINE)
        assert qrm.drain() == 0
        assert qrm.queue_length == 2

    def test_invalid_shots(self, device):
        qrm = QuantumResourceManager(device)
        with pytest.raises(JobError):
            qrm.submit(ghz_circuit(2), shots=0)

    def test_calibration_slot_reserves_partition(self, device):
        sim = Simulation()
        cluster = ClusterScheduler(
            sim, [Partition("compute", 4), Partition("quantum", 1)]
        )
        qrm = QuantumResourceManager(device, cluster=cluster)
        duration = qrm.calibration_slot("quick")
        assert duration == pytest.approx(40 * MINUTE)
        assert cluster.reservation_active("quantum", sim.now)
        assert qrm.stats.calibration_slots_opened == 1

    def test_cluster_without_quantum_partition_rejected(self, device):
        sim = Simulation()
        cluster = ClusterScheduler(sim, [Partition("compute", 4)])
        with pytest.raises(QueueError):
            QuantumResourceManager(device, cluster=cluster)

    def test_jit_compiles_fresh_after_calibration(self, device):
        """JIT picks up the new calibration for a job submitted before it."""
        qrm = QuantumResourceManager(device)
        qrm.submit(ghz_circuit(3), shots=32)
        device.calibrate("quick")
        job = qrm.run_next()
        assert job.payload["calibration_timestamp"] == pytest.approx(
            device.calibration().timestamp, abs=60.0
        )
