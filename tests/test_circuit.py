"""Tests for the QuantumCircuit IR."""

import math

import numpy as np
import pytest

from repro.circuits import QuantumCircuit, bell_circuit, ghz_circuit, random_circuit
from repro.circuits.circuit import Instruction
from repro.circuits.parameters import Parameter
from repro.errors import CircuitError, GateError
from repro.simulator.statevector import circuit_unitary
from tests.conftest import assert_close_up_to_phase


class TestConstruction:
    def test_needs_positive_qubits(self):
        with pytest.raises(CircuitError):
            QuantumCircuit(0)

    def test_default_clbits_match_qubits(self):
        assert QuantumCircuit(5).num_clbits == 5

    def test_chaining(self):
        qc = QuantumCircuit(2)
        assert qc.h(0).cx(0, 1) is qc
        assert len(qc) == 2

    def test_append_validates_qubit_range(self):
        qc = QuantumCircuit(2)
        with pytest.raises(IndexError):
            qc.h(2)

    def test_append_validates_arity(self):
        qc = QuantumCircuit(2)
        with pytest.raises(GateError):
            qc.append("cx", [0])

    def test_duplicate_operands_rejected(self):
        qc = QuantumCircuit(2)
        with pytest.raises(ValueError):
            qc.cx(1, 1)

    def test_measure_default_clbit(self):
        qc = QuantumCircuit(3)
        qc.measure(2)
        assert qc[0].clbits == (2,)

    def test_measure_explicit_clbit(self):
        qc = QuantumCircuit(3)
        qc.measure(0, 2)
        assert qc[0].clbits == (2,)

    def test_barrier_default_all(self):
        qc = QuantumCircuit(3)
        qc.barrier()
        assert qc[0].qubits == (0, 1, 2)

    def test_barrier_subset(self):
        qc = QuantumCircuit(3)
        qc.barrier(0, 2)
        assert qc[0].qubits == (0, 2)

    def test_every_gate_method(self):
        qc = QuantumCircuit(3)
        qc.id(0).x(0).y(0).z(0).h(0).s(0).sdg(0).t(0).tdg(0).sx(0)
        qc.rx(0.1, 0).ry(0.2, 0).rz(0.3, 0).prx(0.4, 0.5, 0)
        qc.u(0.1, 0.2, 0.3, 0).p(0.4, 0)
        qc.cz(0, 1).cx(0, 1).swap(0, 1).iswap(0, 1).cp(0.5, 0, 1).rzz(0.6, 1, 2)
        qc.delay(1e-6, 0).reset(2)
        assert len(qc) == 24


class TestAnalysis:
    def test_depth_ghz(self):
        # h, cx, cx + measure layer on the last-touched chain
        qc = ghz_circuit(3, measure=False)
        assert qc.depth() == 3

    def test_depth_parallel_gates(self):
        qc = QuantumCircuit(4)
        qc.h(0).h(1).h(2).h(3)
        assert qc.depth() == 1

    def test_depth_barrier_synchronizes(self):
        qc = QuantumCircuit(2)
        qc.h(0)
        qc.barrier()
        qc.h(1)
        assert qc.depth() == 2

    def test_count_ops(self):
        qc = ghz_circuit(4)
        ops = qc.count_ops()
        assert ops == {"h": 1, "cx": 3, "measure": 4}

    def test_num_two_qubit_gates(self):
        assert ghz_circuit(5).num_two_qubit_gates() == 4

    def test_interactions(self):
        qc = QuantumCircuit(3)
        qc.cx(0, 1).cx(1, 0).cz(1, 2)
        assert qc.interactions() == {(0, 1): 2, (1, 2): 1}

    def test_qubits_used(self):
        qc = QuantumCircuit(5)
        qc.h(1).cx(1, 3)
        assert qc.qubits_used() == frozenset({1, 3})

    def test_has_measurements(self):
        assert ghz_circuit(2).has_measurements()
        assert not ghz_circuit(2, measure=False).has_measurements()

    def test_is_native(self):
        qc = QuantumCircuit(2)
        qc.prx(0.1, 0.2, 0).cz(0, 1).measure_all()
        assert qc.is_native()
        qc2 = QuantumCircuit(2)
        qc2.h(0)
        assert not qc2.is_native()

    def test_draw_contains_lanes(self):
        art = ghz_circuit(3).draw()
        assert "q 0" in art and "cx:0" in art


class TestCompose:
    def test_compose_identity_map(self):
        a = QuantumCircuit(2)
        a.h(0)
        b = QuantumCircuit(2)
        b.cx(0, 1)
        a.compose(b)
        assert [i.name for i in a] == ["h", "cx"]

    def test_compose_with_mapping(self):
        a = QuantumCircuit(3)
        b = QuantumCircuit(2)
        b.cx(0, 1)
        a.compose(b, {0: 2, 1: 0})
        assert a[0].qubits == (2, 0)

    def test_compose_rejects_out_of_range(self):
        a = QuantumCircuit(2)
        b = QuantumCircuit(2)
        b.h(0)
        with pytest.raises(IndexError):
            a.compose(b, {0: 5, 1: 1})

    def test_copy_independent(self):
        a = ghz_circuit(2)
        b = a.copy()
        b.x(0)
        assert len(b) == len(a) + 1


class TestInverse:
    @pytest.mark.parametrize("seed", range(4))
    def test_inverse_unitary(self, seed):
        qc = random_circuit(3, 12, seed=seed, measure=False)
        qc.cp(0.7, 0, 1).rzz(0.3, 1, 2).iswap(0, 2).prx(0.5, 0.3, 0)
        inv = qc.inverse()
        u = circuit_unitary(qc)
        u_inv = circuit_unitary(inv)
        assert_close_up_to_phase(u_inv @ u, np.eye(8, dtype=complex))

    def test_inverse_rejects_measurements(self):
        with pytest.raises(CircuitError):
            ghz_circuit(2).inverse()


class TestParameterized:
    def test_parameters_collected_sorted(self):
        qc = QuantumCircuit(1)
        b, a = Parameter("b"), Parameter("a")
        qc.rx(b, 0).ry(a, 0)
        assert [p.name for p in qc.parameters] == ["a", "b"]

    def test_bind_produces_numeric(self):
        qc = QuantumCircuit(1)
        p = Parameter("p")
        qc.rx(p, 0)
        bound = qc.bind({p: 0.5})
        assert not bound.parameters
        assert bound[0].params == (0.5,)

    def test_bind_values_positional(self):
        qc = QuantumCircuit(1)
        a, b = Parameter("a"), Parameter("b")
        qc.rx(a, 0).ry(b, 0)
        bound = qc.bind_values([0.1, 0.2])
        assert bound[0].params == (0.1,)

    def test_bind_values_wrong_length(self):
        qc = QuantumCircuit(1)
        qc.rx(Parameter("a"), 0)
        with pytest.raises(CircuitError):
            qc.bind_values([0.1, 0.2])

    def test_expression_parameter_binding(self):
        qc = QuantumCircuit(1)
        p = Parameter("p")
        qc.rx(2.0 * p + 1.0, 0)
        bound = qc.bind({p: 0.5})
        assert bound[0].params == (2.0,)

    def test_original_unchanged_after_bind(self):
        qc = QuantumCircuit(1)
        p = Parameter("p")
        qc.rx(p, 0)
        qc.bind({p: 1.0})
        assert qc.parameters == (p,)


class TestStockCircuits:
    def test_ghz_structure(self):
        qc = ghz_circuit(4)
        assert qc.count_ops()["cx"] == 3
        assert qc.num_qubits == 4

    def test_bell(self):
        qc = bell_circuit()
        assert qc.num_qubits == 2
        assert qc.has_measurements()

    def test_random_circuit_reproducible(self):
        a = random_circuit(4, 20, seed=9)
        b = random_circuit(4, 20, seed=9)
        assert a.instructions == b.instructions

    def test_random_circuit_depth_scales(self):
        qc = random_circuit(4, 30, seed=1, measure=False)
        assert len(qc) == 30


class TestInstruction:
    def test_remapped(self):
        inst = Instruction("cx", (0, 1))
        assert inst.remapped({0: 5, 1: 2}).qubits == (5, 2)

    def test_matrix_requires_bound(self):
        from repro.errors import ParameterError

        inst = Instruction("rx", (0,), (Parameter("p"),))
        with pytest.raises(ParameterError):
            inst.matrix()

    def test_repr_forms(self):
        assert "cx" in repr(Instruction("cx", (0, 1)))
        assert "->" in repr(Instruction("measure", (0,), clbits=(0,)))
