"""Tests for sensors and the Table 1 site survey."""

import math

import numpy as np
import pytest

from repro.errors import SiteSurveyError
from repro.facility.sensors import (
    SiteProfile,
    ac_magnetic_field,
    dc_magnetic_field,
    floor_vibration,
    humidity,
    record_all,
    sound_pressure,
    temperature,
)
from repro.facility.site_survey import (
    LIMITS,
    DeliveryPath,
    analyze_ac_magnetic,
    analyze_dc_magnetic,
    analyze_delivery_path,
    analyze_floor_load,
    analyze_humidity,
    analyze_sound,
    analyze_temperature,
    analyze_vibration,
    band_amplitude_spectrum,
    run_survey,
    select_site,
)
from repro.utils.units import HOUR, MICROTESLA

QUIET = SiteProfile("quiet", tram_distance=1000, hvac_intensity=0.3, basement=True)
TRAM = SiteProfile("tram-side", tram_distance=25, hvac_intensity=0.5)
CONCERT = SiteProfile("concert-hall", death_metal_hours=24.0)


class TestSensors:
    def test_traces_have_expected_shape(self):
        traces = record_all(QUIET, 26 * HOUR, rng=0)
        assert traces["dc_magnetic_field"].data.shape[1] == 3
        assert traces["ac_magnetic_field"].data.shape[1] == 3
        assert traces["floor_vibration"].data.ndim == 1
        assert traces["temperature"].duration == 26 * HOUR

    def test_fast_sensors_truncated(self):
        traces = record_all(QUIET, 26 * HOUR, rng=0, fast_sensor_duration=60.0)
        assert traces["floor_vibration"].duration == 60.0
        assert traces["humidity"].duration == 26 * HOUR

    def test_reproducible(self):
        a = floor_vibration(QUIET, 60.0, rng=3)
        b = floor_vibration(QUIET, 60.0, rng=3)
        np.testing.assert_array_equal(a.data, b.data)

    def test_tram_increases_vibration(self):
        quiet = floor_vibration(QUIET, 120.0, rng=1)
        loud = floor_vibration(TRAM, 120.0, rng=1)
        assert np.std(loud.data) > np.std(quiet.data)

    def test_temperature_diurnal_cycle_present(self):
        trace = temperature(QUIET, 26 * HOUR, rng=2)
        # diurnal swing is visible over a day
        assert trace.data.max() - trace.data.min() > 0.2

    def test_invalid_profile_rejected(self):
        with pytest.raises(Exception):
            SiteProfile("bad", tram_distance=-5)


class TestSpectralAnalysis:
    def test_band_amplitude_recovers_sine(self):
        fs, f0, amp = 1000.0, 60.0, 2.5
        t = np.arange(0, 10.0, 1 / fs)
        sig = amp * np.sin(2 * math.pi * f0 * t)
        freqs, spectrum = band_amplitude_spectrum(sig, fs, 50.0, 70.0)
        peak = spectrum.max()
        assert peak == pytest.approx(amp, rel=0.01)

    def test_band_restriction(self):
        t = np.arange(0, 5.0, 1 / 1000.0)
        sig = np.sin(2 * math.pi * 200.0 * t)
        freqs, spectrum = band_amplitude_spectrum(sig, 1000.0, 5.0, 100.0)
        assert spectrum.max() < 0.01  # tone lies outside band


class TestAnalyses:
    def test_quiet_site_passes_everything(self):
        report = run_survey(QUIET, rng=11)
        assert report.passed, report.as_table()

    def test_tram_fails_vibration_or_dc(self):
        report = run_survey(TRAM, rng=11)
        failed = {row.measurement for row in report.failures()}
        assert failed & {"Floor vibrations", "DC magnetic field"}

    def test_concert_fails_sound(self):
        report = run_survey(CONCERT, rng=11)
        failed = {row.measurement for row in report.failures()}
        assert "Sound pressure" in failed

    def test_short_temperature_recording_rejected(self):
        """Table 1: ≥ 25 h of temperature data required."""
        trace = temperature(QUIET, 10 * HOUR, rng=0)
        with pytest.raises(SiteSurveyError):
            analyze_temperature(trace)

    def test_short_humidity_recording_rejected(self):
        trace = humidity(QUIET, 10 * HOUR, rng=0)
        with pytest.raises(SiteSurveyError):
            analyze_humidity(trace)

    def test_fluorescent_proximity_fails_ac(self):
        close = SiteProfile("fluor", fluorescent_distance=0.3)
        trace = ac_magnetic_field(close, 60.0, rng=5)
        row = analyze_ac_magnetic(trace)
        assert not row.passed

    def test_dc_limit_value(self):
        assert LIMITS["dc_magnetic_field"] == pytest.approx(100 * MICROTESLA)

    def test_delivery_path_bottleneck(self):
        path = DeliveryPath({"dock": 2.0, "elevator": 0.85, "hall": 1.2})
        row = analyze_delivery_path(path)
        assert not row.passed
        assert "elevator" in row.detail

    def test_delivery_path_90cm_boundary(self):
        ok = DeliveryPath({"door": 0.90})
        assert analyze_delivery_path(ok).passed

    def test_floor_load(self):
        assert analyze_floor_load(1500.0).passed
        assert not analyze_floor_load(800.0).passed

    def test_report_table_rendering(self):
        report = run_survey(QUIET, rng=1)
        table = report.as_table()
        assert "DC magnetic field" in table
        assert "OVERALL" in table


class TestSiteSelection:
    def test_selects_only_passing_site(self):
        reports = [run_survey(p, rng=7) for p in (QUIET, TRAM, CONCERT)]
        winner, notes = select_site(reports)
        assert winner is not None and winner.site == "quiet"
        assert any("rejected" in n for n in notes)

    def test_no_passing_site(self):
        reports = [run_survey(p, rng=7) for p in (TRAM, CONCERT)]
        winner, notes = select_site(reports)
        assert winner is None
        assert len(notes) == 2

    def test_margin_tiebreak(self):
        quieter = SiteProfile(
            "quieter", tram_distance=2000, hvac_intensity=0.1, basement=True
        )
        reports = [run_survey(QUIET, rng=3), run_survey(quieter, rng=3)]
        winner, _ = select_site(reports)
        assert winner.site == "quieter"
