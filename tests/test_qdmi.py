"""Tests for the QDMI interface and device bindings."""

import pytest

from repro.errors import PropertyNotSupportedError, QDMIError, SessionError
from repro.qdmi import (
    QDMIProperty,
    QDMISession,
    QPUQDMIDevice,
    SnapshotQDMIDevice,
)
from repro.qpu import DeviceStatus, QPUDevice


class TestSession:
    def test_context_manager_closes(self, device):
        qdmi = QPUQDMIDevice(device)
        with qdmi.open_session() as session:
            assert session.is_open
            session.query(QDMIProperty.NUM_QUBITS)
        assert not session.is_open

    def test_closed_session_rejects_queries(self, device):
        session = QPUQDMIDevice(device).open_session()
        session.close()
        with pytest.raises(SessionError):
            session.query(QDMIProperty.NUM_QUBITS)

    def test_reenter_closed_rejected(self, device):
        session = QPUQDMIDevice(device).open_session()
        session.close()
        with pytest.raises(SessionError):
            with session:
                pass

    def test_query_counter(self, device):
        with QPUQDMIDevice(device).open_session() as session:
            session.query(QDMIProperty.NUM_QUBITS)
            session.query(QDMIProperty.NATIVE_GATES)
        assert session.queries_served == 2


class TestQPUDeviceBinding:
    def test_device_scoped_properties(self, device):
        qdmi = QPUQDMIDevice(device)
        assert qdmi.query(QDMIProperty.NUM_QUBITS) == 20
        assert qdmi.query(QDMIProperty.STATUS) == "online"
        assert len(qdmi.query(QDMIProperty.COUPLING_MAP)) == 31
        assert "prx" in qdmi.query(QDMIProperty.NATIVE_GATES)

    def test_qubit_scoped_properties(self, device):
        qdmi = QPUQDMIDevice(device)
        t1 = qdmi.query(QDMIProperty.T1, qubit=3)
        assert 1e-6 < t1 < 1e-3
        fid = qdmi.query(QDMIProperty.PRX_FIDELITY, qubit=3)
        assert 0.9 < fid <= 1.0

    def test_qubit_scope_required(self, device):
        with pytest.raises(QDMIError):
            QPUQDMIDevice(device).query(QDMIProperty.T1)

    def test_coupler_scoped_properties(self, device):
        qdmi = QPUQDMIDevice(device)
        coupler = device.topology.couplers[0]
        fid = qdmi.query(QDMIProperty.CZ_FIDELITY, coupler=coupler)
        assert 0.9 < fid <= 1.0

    def test_coupler_scope_required(self, device):
        with pytest.raises(QDMIError):
            QPUQDMIDevice(device).query(QDMIProperty.CZ_FIDELITY)

    def test_status_tracks_device(self, device):
        qdmi = QPUQDMIDevice(device)
        device.set_status(DeviceStatus.MAINTENANCE)
        assert qdmi.query(QDMIProperty.STATUS) == "maintenance"

    def test_live_binding_sees_drift(self, device):
        qdmi = QPUQDMIDevice(device)
        before = qdmi.query(QDMIProperty.MEDIAN_CZ_FIDELITY)
        device.advance_time(6 * 24 * 3600)
        after = qdmi.query(QDMIProperty.MEDIAN_CZ_FIDELITY)
        assert after != before

    def test_timestamp_updates_on_calibration(self, device):
        qdmi = QPUQDMIDevice(device)
        t0 = qdmi.query(QDMIProperty.CALIBRATION_TIMESTAMP)
        device.calibrate("quick")
        t1 = qdmi.query(QDMIProperty.CALIBRATION_TIMESTAMP)
        assert t1 > t0


class TestSnapshotBinding:
    def test_frozen_answers(self, snapshot):
        qdmi = SnapshotQDMIDevice(snapshot, name="frozen")
        assert qdmi.query(QDMIProperty.NAME) == "frozen"
        assert (
            qdmi.query(QDMIProperty.CALIBRATION_SNAPSHOT).timestamp
            == snapshot.timestamp
        )

    def test_supports_everything(self, snapshot):
        qdmi = SnapshotQDMIDevice(snapshot)
        assert qdmi.supported_properties() == frozenset(QDMIProperty)


class TestTelemetryBinding:
    def test_answers_from_store(self, device):
        from repro.telemetry import (
            DCDBCollector,
            MetricStore,
            QPUMetricsPlugin,
            TelemetryQDMIDevice,
        )

        store = MetricStore()
        collector = DCDBCollector(store, [QPUMetricsPlugin(device)])
        collector.run_cycle(device.time)
        qdmi = TelemetryQDMIDevice(store, snapshot_provider=device.calibration)
        fid = qdmi.query(QDMIProperty.MEDIAN_CZ_FIDELITY)
        assert 0.9 < fid <= 1.0
        t1 = qdmi.query(QDMIProperty.T1, qubit=0)
        assert t1 > 0

    def test_uncollected_store_raises(self, device):
        from repro.telemetry import MetricStore, TelemetryQDMIDevice

        qdmi = TelemetryQDMIDevice(MetricStore())
        with pytest.raises(QDMIError):
            qdmi.query(QDMIProperty.MEDIAN_CZ_FIDELITY)

    def test_snapshot_unsupported_without_provider(self, device):
        from repro.telemetry import MetricStore, TelemetryQDMIDevice

        qdmi = TelemetryQDMIDevice(MetricStore())
        with pytest.raises(PropertyNotSupportedError):
            qdmi.query(QDMIProperty.CALIBRATION_SNAPSHOT)
