"""Tests for the gate library and PRX synthesis."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import gates as G
from repro.errors import GateError
from tests.conftest import assert_close_up_to_phase, random_unitary_2x2


class TestMatrices:
    def test_all_unitary_gates_are_unitary(self):
        rng = np.random.default_rng(0)
        for name, spec in G.GATES.items():
            if spec.directive:
                continue
            params = rng.uniform(-math.pi, math.pi, spec.num_params)
            m = spec.matrix(params)
            dim = 1 << spec.num_qubits
            np.testing.assert_allclose(
                m @ m.conj().T, np.eye(dim), atol=1e-12, err_msg=name
            )

    def test_hermitian_gates_self_inverse(self):
        for name, spec in G.GATES.items():
            if not spec.hermitian:
                continue
            m = spec.matrix()
            np.testing.assert_allclose(m @ m, np.eye(m.shape[0]), atol=1e-12)

    def test_prx_zero_phase_is_rx(self):
        for theta in (0.3, 1.2, math.pi):
            np.testing.assert_allclose(
                G.prx_matrix(theta, 0.0), G.rx_matrix(theta), atol=1e-12
            )

    def test_prx_half_pi_phase_is_ry(self):
        for theta in (0.3, 1.2):
            np.testing.assert_allclose(
                G.prx_matrix(theta, math.pi / 2), G.ry_matrix(theta), atol=1e-12
            )

    def test_prx_identity_decomposition(self):
        """PRX(θ, φ) = RZ(φ) RX(θ) RZ(−φ)."""
        theta, phi = 0.7, 1.1
        expected = G.rz_matrix(phi) @ G.rx_matrix(theta) @ G.rz_matrix(-phi)
        np.testing.assert_allclose(G.prx_matrix(theta, phi), expected, atol=1e-12)

    def test_u_gate_special_cases(self):
        np.testing.assert_allclose(
            G.u_matrix(math.pi / 2, 0.0, math.pi),
            G.spec("h").matrix(),
            atol=1e-12,
        )

    def test_cx_action_on_basis(self):
        m = G.cx_matrix()
        # |control=1, target=0⟩ → |1,1⟩: little-endian index 0b01=1 → 0b11=3
        vec = np.zeros(4)
        vec[1] = 1.0
        out = m @ vec
        assert abs(out[3] - 1.0) < 1e-12

    def test_cz_symmetric(self):
        assert G.spec("cz").symmetric

    def test_rzz_diagonal(self):
        m = G.rzz_matrix(0.5)
        assert np.allclose(m, np.diag(np.diag(m)))

    def test_spec_unknown_gate_raises(self):
        with pytest.raises(GateError):
            G.spec("nonexistent")

    def test_matrix_wrong_param_count(self):
        with pytest.raises(GateError):
            G.spec("rx").matrix([])

    def test_directive_has_no_matrix(self):
        with pytest.raises(GateError):
            G.spec("measure").matrix()

    def test_native_set_contents(self):
        assert "prx" in G.NATIVE_GATES
        assert "cz" in G.NATIVE_GATES
        assert "rz" in G.NATIVE_GATES  # virtual
        assert "cx" not in G.NATIVE_GATES
        assert G.is_native("prx") and not G.is_native("h")


class TestZXZAngles:
    @given(st.integers(0, 10_000))
    @settings(max_examples=60, deadline=None)
    def test_zxz_reconstruction(self, seed):
        rng = np.random.default_rng(seed)
        u = random_unitary_2x2(rng)
        su = u / np.sqrt(np.linalg.det(u))
        b, g, d = G.zxz_angles(su)
        rebuilt = G.rz_matrix(b) @ G.rx_matrix(g) @ G.rz_matrix(d)
        assert_close_up_to_phase(rebuilt, su)

    def test_zxz_identity(self):
        b, g, d = G.zxz_angles(np.eye(2, dtype=complex))
        assert abs(g) < 1e-12

    def test_zxz_pure_rx_pi(self):
        su = G.rx_matrix(math.pi)
        b, g, d = G.zxz_angles(su)
        assert abs(g - math.pi) < 1e-9


class TestPRXSynthesis:
    @given(st.integers(0, 10_000))
    @settings(max_examples=80, deadline=None)
    def test_prx_rz_reconstruction(self, seed):
        rng = np.random.default_rng(seed)
        u = random_unitary_2x2(rng)
        pulses, tau = G.prx_rz_for_unitary(u)
        assert len(pulses) <= 1
        m = np.eye(2, dtype=complex)
        for theta, phi in pulses:
            m = G.prx_matrix(theta, phi) @ m
        m = G.rz_matrix(tau) @ m
        assert_close_up_to_phase(m, u)

    @given(st.integers(0, 10_000))
    @settings(max_examples=80, deadline=None)
    def test_prx_pair_reconstruction(self, seed):
        rng = np.random.default_rng(seed)
        u = random_unitary_2x2(rng)
        pulses = G.prx_pair_for_unitary(u)
        assert len(pulses) <= 2
        m = np.eye(2, dtype=complex)
        for theta, phi in pulses:
            m = G.prx_matrix(theta, phi) @ m
        assert_close_up_to_phase(m, u)

    def test_identity_needs_no_pulses(self):
        assert G.prx_pair_for_unitary(np.eye(2, dtype=complex)) == []
        pulses, tau = G.prx_rz_for_unitary(np.eye(2, dtype=complex))
        assert pulses == [] and abs(tau) < 1e-12

    def test_pure_rz_uses_pulse_pair(self):
        u = G.rz_matrix(0.8)
        pulses = G.prx_pair_for_unitary(u)
        assert len(pulses) == 2
        m = G.prx_matrix(*pulses[1]) @ G.prx_matrix(*pulses[0])
        assert_close_up_to_phase(m, u)

    def test_pure_rz_virtual_form_is_pulse_free(self):
        pulses, tau = G.prx_rz_for_unitary(G.rz_matrix(0.8))
        assert pulses == []
        assert abs(tau - 0.8) < 1e-9

    def test_x_gate_single_pulse(self):
        pulses = G.prx_pair_for_unitary(G.spec("x").matrix())
        assert len(pulses) == 1
        theta, _ = pulses[0]
        assert abs(theta - math.pi) < 1e-9

    def test_hadamard_synthesis(self):
        h = G.spec("h").matrix()
        pulses, tau = G.prx_rz_for_unitary(h)
        assert len(pulses) == 1  # one physical pulse + virtual RZ
        m = G.rz_matrix(tau) @ G.prx_matrix(*pulses[0])
        assert_close_up_to_phase(m, h)

    def test_singular_matrix_rejected(self):
        with pytest.raises(GateError):
            G.prx_pair_for_unitary(np.zeros((2, 2), dtype=complex))

    def test_wrong_shape_rejected(self):
        with pytest.raises(GateError):
            G.prx_rz_for_unitary(np.eye(4, dtype=complex))
