"""Tests for circuit JSON serialization (the REST wire format)."""

import json

import pytest

from repro.circuits import (
    QuantumCircuit,
    circuit_from_dict,
    circuit_from_json,
    circuit_to_dict,
    circuit_to_json,
    ghz_circuit,
    random_circuit,
)
from repro.circuits.parameters import Parameter
from repro.circuits.serialize import FORMAT_VERSION
from repro.errors import SerializationError


class TestRoundTrip:
    @pytest.mark.parametrize("seed", range(3))
    def test_random_circuit_roundtrip(self, seed):
        qc = random_circuit(4, 25, seed=seed)
        restored = circuit_from_dict(circuit_to_dict(qc))
        assert restored == qc
        assert restored.name == qc.name

    def test_json_roundtrip(self):
        qc = ghz_circuit(3)
        assert circuit_from_json(circuit_to_json(qc)) == qc

    def test_metadata_preserved(self):
        qc = ghz_circuit(2)
        qc.metadata["experiment"] = "bell-test"
        restored = circuit_from_dict(circuit_to_dict(qc))
        assert restored.metadata["experiment"] == "bell-test"

    def test_barrier_roundtrip(self):
        qc = QuantumCircuit(3)
        qc.h(0)
        qc.barrier(0, 2)
        restored = circuit_from_dict(circuit_to_dict(qc))
        assert restored[1].name == "barrier"
        assert restored[1].qubits == (0, 2)

    def test_measure_clbits_roundtrip(self):
        qc = QuantumCircuit(2, num_clbits=4)
        qc.measure(0, 3)
        restored = circuit_from_dict(circuit_to_dict(qc))
        assert restored[0].clbits == (3,)
        assert restored.num_clbits == 4


class TestValidation:
    def test_unbound_parameters_rejected(self):
        qc = QuantumCircuit(1)
        qc.rx(Parameter("p"), 0)
        with pytest.raises(SerializationError):
            circuit_to_dict(qc)

    def test_wrong_version_rejected(self):
        payload = circuit_to_dict(ghz_circuit(2))
        payload["version"] = FORMAT_VERSION + 1
        with pytest.raises(SerializationError):
            circuit_from_dict(payload)

    def test_malformed_payload_rejected(self):
        with pytest.raises(SerializationError):
            circuit_from_dict({"version": FORMAT_VERSION})

    def test_invalid_json_rejected(self):
        with pytest.raises(SerializationError):
            circuit_from_json("{not json")

    def test_non_object_json_rejected(self):
        with pytest.raises(SerializationError):
            circuit_from_json(json.dumps([1, 2, 3]))

    def test_bad_gate_name_rejected(self):
        payload = circuit_to_dict(ghz_circuit(2))
        payload["instructions"][0]["name"] = "frobnicate"
        with pytest.raises(SerializationError):
            circuit_from_dict(payload)
