"""Package-surface and exception-hierarchy tests."""

import pytest

import repro
from repro import errors


class TestPackageSurface:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_quickstart_names_exported(self):
        for name in (
            "QuantumCircuit",
            "ghz_circuit",
            "MQSSClient",
            "QPUDevice",
            "Topology",
            "QuantumResourceManager",
            "Counts",
        ):
            assert hasattr(repro, name), name

    def test_all_subpackages_import(self):
        import repro.calibration
        import repro.circuits
        import repro.compiler
        import repro.facility
        import repro.hybrid
        import repro.middleware
        import repro.middleware.adapters
        import repro.ops
        import repro.qdmi
        import repro.qpu
        import repro.scheduler
        import repro.simulator
        import repro.telemetry
        import repro.transpiler

    def test_docstring_quickstart_runs(self):
        """The quickstart in the package docstring must actually work."""
        from repro import MQSSClient, QPUDevice, QuantumResourceManager
        from repro.circuits import ghz_circuit

        device = QPUDevice(seed=7)
        client = MQSSClient(QuantumResourceManager(device), context="hpc")
        counts = client.run(ghz_circuit(5), shots=128)
        assert counts.shots == 128


class TestExceptionHierarchy:
    def test_everything_roots_at_repro_error(self):
        names = [
            n
            for n in dir(errors)
            if n.endswith("Error") and n != "ReproError"
        ]
        assert len(names) > 20
        for name in names:
            cls = getattr(errors, name)
            assert issubclass(cls, errors.ReproError), name

    def test_layer_families(self):
        assert issubclass(errors.GateError, errors.CircuitError)
        assert issubclass(errors.NoiseModelError, errors.SimulationError)
        assert issubclass(errors.TopologyError, errors.DeviceError)
        assert issubclass(errors.LoweringError, errors.CompilerError)
        assert issubclass(errors.RestApiError, errors.MiddlewareError)
        assert issubclass(errors.SiteSurveyError, errors.FacilityError)
        assert issubclass(errors.ReservationError, errors.SchedulerError)

    def test_rest_api_error_carries_status(self):
        err = errors.RestApiError(404, "not found")
        assert err.status == 404
        assert "not found" in str(err)

    def test_catching_at_layer_granularity(self):
        """A scheduler can catch device trouble without masking bugs."""
        try:
            raise errors.DeviceUnavailableError("cooling down")
        except errors.DeviceError as caught:
            assert "cooling" in str(caught)
        with pytest.raises(errors.ReproError):
            raise errors.QueueError("full")
