"""Tests for the device topology."""

import pytest

from repro.errors import TopologyError
from repro.qpu.topology import Topology


class TestConstruction:
    def test_square_grid_counts(self):
        t = Topology.square_grid(4, 5)
        assert t.num_qubits == 20
        # edges: 4*(5-1) horizontal + 5*(4-1) vertical = 16 + 15
        assert t.num_couplers == 31

    def test_garnet_like_is_4x5(self):
        t = Topology.iqm_garnet_like()
        assert t.num_qubits == 20
        assert t.rows == 4 and t.cols == 5

    def test_line(self):
        t = Topology.line(5)
        assert t.num_couplers == 4
        assert t.is_coupled(2, 3)
        assert not t.is_coupled(0, 4)

    def test_rejects_disconnected(self):
        with pytest.raises(TopologyError):
            Topology(4, [(0, 1), (2, 3)])

    def test_rejects_self_loop(self):
        with pytest.raises(TopologyError):
            Topology(2, [(0, 0), (0, 1)])

    def test_rejects_out_of_range_edge(self):
        with pytest.raises(TopologyError):
            Topology(2, [(0, 5)])

    def test_scaled_device_sizes(self):
        for n in (20, 54, 150):
            t = Topology.scaled_device(n)
            assert t.num_qubits == n


class TestQueries:
    def test_grid_adjacency(self):
        t = Topology.square_grid(4, 5)
        assert t.is_coupled(0, 1)      # horizontal
        assert t.is_coupled(0, 5)      # vertical
        assert not t.is_coupled(0, 6)  # diagonal
        assert not t.is_coupled(4, 5)  # row wrap

    def test_neighbors_corner_and_center(self):
        t = Topology.square_grid(4, 5)
        assert t.neighbors(0) == [1, 5]
        assert t.neighbors(6) == [1, 5, 7, 11]

    def test_degree(self):
        t = Topology.square_grid(4, 5)
        assert t.degree(0) == 2
        assert t.degree(6) == 4

    def test_distance(self):
        t = Topology.square_grid(4, 5)
        assert t.distance(0, 0) == 0
        assert t.distance(0, 1) == 1
        assert t.distance(0, 19) == 7  # manhattan (3 rows + 4 cols)

    def test_shortest_path_endpoints(self):
        t = Topology.square_grid(4, 5)
        path = t.shortest_path(0, 19)
        assert path[0] == 0 and path[-1] == 19
        assert len(path) == t.distance(0, 19) + 1
        for a, b in zip(path, path[1:]):
            assert t.is_coupled(a, b)


class TestHamiltonianPath:
    def test_grid_serpentine_visits_all(self):
        t = Topology.square_grid(4, 5)
        path = t.hamiltonian_path()
        assert sorted(path) == list(range(20))
        for a, b in zip(path, path[1:]):
            assert t.is_coupled(a, b)

    def test_line_path(self):
        t = Topology.line(6)
        path = t.hamiltonian_path()
        assert sorted(path) == list(range(6))


class TestSubsets:
    def test_connected_pairs_are_couplers(self):
        t = Topology.square_grid(2, 3)
        pairs = t.connected_subsets(2)
        assert len(pairs) == t.num_couplers

    def test_size_limit(self):
        t = Topology.square_grid(2, 2)
        with pytest.raises(TopologyError):
            t.connected_subsets(7)

    def test_subtopology_reindexes(self):
        t = Topology.square_grid(2, 3)
        sub = t.subtopology([0, 1, 2])
        assert sub.num_qubits == 3
        assert sub.is_coupled(0, 1) and sub.is_coupled(1, 2)

    def test_subtopology_distinct_required(self):
        t = Topology.square_grid(2, 2)
        with pytest.raises(TopologyError):
            t.subtopology([0, 0])

    def test_ascii_art_mentions_all_qubits(self):
        art = Topology.square_grid(2, 2).ascii_art()
        for q in range(4):
            assert f"Q{q:02d}" in art
