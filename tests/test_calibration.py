"""Tests for live benchmarks and the recalibration controller."""

import pytest

from repro.calibration import (
    CalibrationController,
    ghz_benchmark,
    health_check_suite,
    readout_benchmark,
)
from repro.errors import CalibrationError, DeviceError
from repro.qpu import QPUDevice
from repro.telemetry import DCDBCollector, MetricStore, QPUMetricsPlugin
from repro.utils.units import DAY, HOUR, MINUTE


class TestGhzBenchmark:
    def test_fresh_device_scores_high(self, device):
        result = ghz_benchmark(device, 4, shots=800)
        assert result.score > 0.8
        assert len(result.qubits) == 4

    def test_chain_is_on_device(self, device):
        result = ghz_benchmark(device, 5, shots=256)
        for a, b in zip(result.qubits, result.qubits[1:]):
            assert device.topology.is_coupled(a, b)

    def test_explicit_chain_respected(self, device):
        chain = [0, 1, 2]
        result = ghz_benchmark(device, 3, shots=256, chain=chain)
        assert result.qubits == (0, 1, 2)

    def test_chain_length_mismatch(self, device):
        with pytest.raises(DeviceError):
            ghz_benchmark(device, 3, chain=[0, 1])

    def test_size_bounds(self, device):
        with pytest.raises(DeviceError):
            ghz_benchmark(device, 1)

    def test_score_degrades_with_drift(self):
        fresh = QPUDevice(seed=21)
        fresh_score = ghz_benchmark(fresh, 6, shots=1200).score
        aged = QPUDevice(seed=21)
        aged.advance_time(10 * DAY)
        aged_score = ghz_benchmark(aged, 6, shots=1200).score
        assert aged_score < fresh_score

    def test_details_populated(self, device):
        result = ghz_benchmark(device, 3, shots=256)
        assert "p_all_zero" in result.details
        assert result.duration > 0


class TestReadoutBenchmark:
    def test_scores_near_readout_fidelity(self, device):
        result = readout_benchmark(device, shots=400)
        snapshot = device.calibration()
        expected = snapshot.median_readout_fidelity()
        assert result.score == pytest.approx(expected, abs=0.03)

    def test_covers_all_qubits(self, device):
        result = readout_benchmark(device, shots=64)
        assert result.qubits == tuple(range(20))


class TestHealthSuite:
    def test_contains_requested_checks(self, device):
        suite = health_check_suite(device, ghz_sizes=(2, 4), shots=128)
        assert set(suite) == {"ghz2", "ghz4", "readout"}

    def test_oversized_ghz_skipped(self, device):
        suite = health_check_suite(device, ghz_sizes=(2, 50), shots=64)
        assert "ghz50" not in suite


class TestController:
    def _telemetry(self, device):
        store = MetricStore()
        collector = DCDBCollector(store, [QPUMetricsPlugin(device, per_qubit=False)])
        return store, collector

    def test_no_action_when_fresh(self, device):
        store, collector = self._telemetry(device)
        ctrl = CalibrationController(device)
        collector.run_cycle(device.time)
        assert ctrl.step(store) is None
        assert ctrl.stats.advised_none == 1

    def test_calibrates_after_drift(self, device):
        store, collector = self._telemetry(device)
        ctrl = CalibrationController(device)
        events = []
        for _ in range(5 * 12):
            device.advance_time(2 * HOUR)
            collector.run_cycle(device.time)
            ev = ctrl.step(store)
            if ev:
                events.append(ev)
        assert events, "controller never calibrated over 5 days of drift"
        assert all(e.kind in ("quick", "full") for e in events)

    def test_window_blocks_calibration(self, device):
        store, collector = self._telemetry(device)
        ctrl = CalibrationController(device, window_fn=lambda _t: False)
        device.advance_time(6 * DAY)
        collector.run_cycle(device.time)
        assert ctrl.step(store) is None
        assert ctrl.stats.skipped_no_window == 1

    def test_fixed_period_policy(self, device):
        store, _ = self._telemetry(device)
        ctrl = CalibrationController(
            device, policy="fixed_period", fixed_period=12 * HOUR
        )
        device.advance_time(13 * HOUR)
        ev = ctrl.step(store)
        assert ev is not None and ev.kind == "full"
        # immediately after: no new calibration
        assert ctrl.step(store) is None

    def test_unknown_policy_rejected(self, device):
        with pytest.raises(CalibrationError):
            CalibrationController(device, policy="vibes")

    def test_force(self, device):
        ctrl = CalibrationController(device)
        ev = ctrl.force("full", "post-outage")
        assert ev.kind == "full"
        assert ev.duration == pytest.approx(100 * MINUTE)
        assert ctrl.stats.full_count == 1

    def test_stats_total_time(self, device):
        ctrl = CalibrationController(device)
        ctrl.force("quick")
        ctrl.force("full")
        assert ctrl.stats.total_calibration_time == pytest.approx(140 * MINUTE)

    def test_events_logged(self, device):
        ctrl = CalibrationController(device)
        ctrl.force("quick", "test reason")
        assert len(ctrl.events) == 1
        assert ctrl.events[0].reason == "test reason"
