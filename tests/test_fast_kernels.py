"""Equivalence suite for the fast-kernel simulation engine.

The specialized 1q/2q kernels, the bit-sliced measurement helpers, the
vectorized sampler, and the trajectory prefix-sharing path must all be
*semantically invisible*: every test here pins the fast implementation
against the generic reference (``apply_matrix_generic``, the baseline
grouped sampler, or a hand-rolled slow computation) to 1e-12, or — where
RNG consumption order legitimately differs — statistically.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import QuantumCircuit, ghz_circuit, random_circuit
from repro.circuits.gates import (
    cphase_matrix,
    cx_matrix,
    prx_matrix,
    rz_matrix,
    rzz_matrix,
    spec,
)
from repro.hybrid.observables import (
    PauliSum,
    expectation_statevector,
    h2_hamiltonian,
    transverse_field_ising,
)
from repro.simulator import NoiseModel, depolarizing_error, pauli_error
from repro.simulator import sampler as sampler_mod
from repro.simulator.sampler import (
    _run_trajectory,
    _sample_grouped,
    _sample_grouped_baseline,
    engine_mode,
    sample_counts,
)
from repro.simulator.statevector import StateVector, simulate_statevector
from tests.conftest import random_unitary_2x2


def random_state(num_qubits: int, rng: np.random.Generator) -> np.ndarray:
    vec = rng.normal(size=1 << num_qubits) + 1j * rng.normal(size=1 << num_qubits)
    return vec / np.linalg.norm(vec)


def random_unitary(dim: int, rng: np.random.Generator) -> np.ndarray:
    z = rng.normal(size=(dim, dim)) + 1j * rng.normal(size=(dim, dim))
    q, r = np.linalg.qr(z)
    return q * (np.diag(r) / np.abs(np.diag(r)))


def assert_fast_matches_generic(matrix, qubits, num_qubits, seed=0):
    rng = np.random.default_rng(seed)
    vec = random_state(num_qubits, rng)
    fast = StateVector(num_qubits, vec).apply_matrix(matrix, qubits)
    slow = StateVector(num_qubits, vec).apply_matrix_generic(matrix, qubits)
    np.testing.assert_allclose(fast.data, slow.data, atol=1e-12)


class TestOneQubitKernels:
    @given(st.integers(0, 10_000))
    @settings(max_examples=60, deadline=None)
    def test_random_unitary_any_qubit(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(1, 6))
        q = int(rng.integers(n))
        assert_fast_matches_generic(random_unitary_2x2(rng), [q], n, seed)

    @pytest.mark.parametrize("name", ["z", "s", "sdg", "t", "tdg", "p", "rz"])
    def test_diagonal_gates(self, name):
        g = spec(name)
        params = [0.0] * 0 if g.num_params == 0 else [0.731]
        for q in range(4):
            assert_fast_matches_generic(g.matrix(params), [q], 4, seed=q)

    @pytest.mark.parametrize("name", ["x", "y"])
    def test_antidiagonal_gates(self, name):
        for q in range(4):
            assert_fast_matches_generic(spec(name).matrix(), [q], 4, seed=q)

    @pytest.mark.parametrize("name", ["h", "sx", "prx"])
    def test_dense_gates(self, name):
        g = spec(name)
        params = [] if g.num_params == 0 else [0.4, -1.2][: g.num_params]
        for q in range(4):
            assert_fast_matches_generic(g.matrix(params), [q], 4, seed=q)


class TestTwoQubitKernels:
    #: adjacent, non-adjacent, and both operand orders
    PAIRS = [(0, 1), (1, 0), (0, 2), (2, 0), (1, 3), (3, 1), (0, 3)]

    @given(st.integers(0, 10_000))
    @settings(max_examples=60, deadline=None)
    def test_random_unitary_any_pair(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(2, 6))
        qs = [int(q) for q in rng.choice(n, size=2, replace=False)]
        assert_fast_matches_generic(random_unitary(4, rng), qs, n, seed)

    @pytest.mark.parametrize("pair", PAIRS)
    def test_diagonal_cz_cp_rzz(self, pair):
        for matrix in (spec("cz").matrix(), cphase_matrix(0.9), rzz_matrix(-1.3)):
            assert_fast_matches_generic(matrix, pair, 4, seed=sum(pair))

    @pytest.mark.parametrize("pair", PAIRS)
    def test_permutation_cx_swap_iswap(self, pair):
        for matrix in (cx_matrix(), spec("swap").matrix(), spec("iswap").matrix()):
            assert_fast_matches_generic(matrix, pair, 4, seed=sum(pair))

    def test_identity_rows_leave_slices_untouched(self):
        """CX must not rewrite the control-off subspace at all."""
        rng = np.random.default_rng(5)
        vec = random_state(3, rng)
        sv = StateVector(3, vec)
        sv.apply_matrix(cx_matrix(), [0, 2])
        # control (qubit 0) = 0 amplitudes are bit-identical
        untouched = [i for i in range(8) if not (i & 1)]
        np.testing.assert_array_equal(sv.data[untouched], vec[untouched])


class TestCircuitLevelEquivalence:
    @pytest.mark.parametrize("seed", range(6))
    def test_random_circuits_match_generic_engine(self, seed):
        qc = random_circuit(5, 40, seed=seed, measure=False)
        fast = simulate_statevector(qc)
        with engine_mode(fast=False):
            slow = simulate_statevector(qc)
        np.testing.assert_allclose(fast.data, slow.data, atol=1e-12)

    def test_three_qubit_operator_uses_generic_path(self):
        rng = np.random.default_rng(9)
        u = random_unitary(8, rng)
        vec = random_state(4, rng)
        got = StateVector(4, vec).apply_matrix(u, [0, 2, 3])
        want = StateVector(4, vec).apply_matrix_generic(u, [0, 2, 3])
        np.testing.assert_allclose(got.data, want.data, atol=1e-12)


class TestMeasurementHelpers:
    @given(st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_marginal_matches_full_tensor(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(1, 6))
        q = int(rng.integers(n))
        sv = StateVector(n, random_state(n, rng))
        probs = sv.probabilities()
        want = sum(p for i, p in enumerate(probs) if (i >> q) & 1)
        assert sv.marginal_probability_one(q) == pytest.approx(want, abs=1e-12)

    def test_collapse_matches_manual_projection(self):
        rng = np.random.default_rng(11)
        vec = random_state(4, rng)
        sv = StateVector(4, vec)
        prob = sv.collapse(2, 1)
        projected = vec.copy()
        mask = np.array([(i >> 2) & 1 == 0 for i in range(16)])
        projected[mask] = 0.0
        want_prob = float(np.sum(np.abs(vec[~mask]) ** 2))
        assert prob == pytest.approx(want_prob, abs=1e-12)
        np.testing.assert_allclose(
            sv.data, projected / np.sqrt(want_prob), atol=1e-12
        )

    def test_sample_bits_match_per_column_extraction(self):
        """The shift-and-mask grid equals the seed's per-column loop."""
        sv = simulate_statevector(random_circuit(4, 25, seed=3, measure=False))
        qs = [3, 0, 2]
        got = sv.sample(500, rng=np.random.default_rng(21), qubits=qs)
        # replicate the seed implementation with the identical RNG stream
        r = np.random.default_rng(21)
        probs = sv.probabilities()
        probs = probs / probs.sum()
        outcomes = r.choice(probs.size, size=500, p=probs)
        want = np.empty((500, len(qs)), dtype=np.uint8)
        for col, q in enumerate(qs):
            want[:, col] = (outcomes >> q) & 1
        np.testing.assert_array_equal(got, want)


class TestDiagonalExpectation:
    @given(st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_z_strings_match_apply_and_overlap(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(1, 6))
        k = int(rng.integers(1, n + 1))
        qs = [int(q) for q in rng.choice(n, size=k, replace=False)]
        labels = "".join(rng.choice(list("IZ"), size=k))
        sv = StateVector(n, random_state(n, rng))
        fast = sv.expectation_pauli(labels, qs)
        work = sv.copy()
        work.apply_pauli(labels, qs)
        slow = float(np.real(np.vdot(sv.data, work.data)))
        assert fast == pytest.approx(slow, abs=1e-12)

    def test_expectation_statevector_matches_dense_matrix(self):
        for ham in (h2_hamiltonian(), transverse_field_ising(4)):
            qc = random_circuit(
                max(2, ham.num_qubits), 30, seed=13, measure=False
            )
            sv = simulate_statevector(qc)
            dense = ham.matrix()
            want = float(np.real(np.vdot(sv.data, dense @ sv.data)))
            assert expectation_statevector(ham, sv) == pytest.approx(
                want, abs=1e-10
            )

    def test_expectation_statevector_leaves_state_intact(self):
        sv = simulate_statevector(ghz_circuit(3, measure=False))
        before = sv.data.copy()
        expectation_statevector(transverse_field_ising(3), sv)
        np.testing.assert_array_equal(sv.data, before)


class TestCopyFastPath:
    def test_copy_is_deep_and_exact(self):
        sv = simulate_statevector(random_circuit(3, 20, seed=7, measure=False))
        dup = sv.copy()
        np.testing.assert_array_equal(dup.data, sv.data)
        dup.apply_gate("x", [0])
        assert not np.array_equal(dup.data, sv.data)

    def test_copy_single_allocation(self):
        """copy() must hand the clone a fresh buffer, not a double copy —
        the clone's base is its own array, unshared with the source."""
        sv = StateVector(5)
        dup = sv.copy()
        assert dup.data is not sv.data
        assert not np.shares_memory(dup.data, sv.data)


class TestPrefixSharingSampler:
    def _noise(self) -> NoiseModel:
        nm = NoiseModel()
        nm.add_gate_error(depolarizing_error(0.03, 2), "cx")
        nm.add_gate_error(depolarizing_error(0.02, 1), "h")
        return nm

    def test_deterministic_pattern_bit_identical_to_baseline(self):
        """With a single certain error event there is exactly one group,
        so prefix-sharing consumes the RNG identically to the baseline."""
        qc = QuantumCircuit(2)
        qc.h(0)
        qc.cx(0, 1)
        qc.measure_all()
        nm = NoiseModel()
        nm.add_gate_error(pauli_error([("XI", 1.0)]), "cx")
        rng_a = np.random.default_rng(42)
        rng_b = np.random.default_rng(42)
        fast = _sample_grouped(qc, 200, nm, rng_a, {})
        slow = _sample_grouped_baseline(qc, 200, nm, rng_b, {})
        np.testing.assert_array_equal(fast, slow)

    def test_replayed_trajectory_state_matches_from_scratch(self):
        """Each pattern's replayed suffix must equal a from-|0⟩ run."""
        qc = ghz_circuit(5)
        nm = self._noise()
        rng = np.random.default_rng(0)
        noisy = sampler_mod._noisy_ops(qc, nm, {})
        errors = dict(noisy)
        # a few representative patterns: early, late, and multi-site
        first_idx = noisy[0][0]
        last_idx = noisy[-1][0]
        patterns = [
            {first_idx: 0},
            {last_idx: 0},
            {first_idx: 1, last_idx: 2},
        ]
        for pattern in patterns:
            want, _ = _run_trajectory(qc, pattern, errors)
            instructions = list(qc)
            first = min(pattern)
            state = StateVector(qc.num_qubits)
            sampler_mod._advance_clean(state, instructions, 0, first + 1)
            for idx in range(first, len(instructions)):
                if idx > first:
                    sampler_mod._advance_clean(state, instructions, idx, idx + 1)
                if idx in pattern:
                    sampler_mod._inject(
                        state, instructions[idx], errors[idx], pattern[idx]
                    )
            np.testing.assert_allclose(state.data, want.data, atol=1e-12)

    def test_distribution_matches_baseline(self):
        """Grouped prefix-sharing and the baseline agree statistically."""
        qc = ghz_circuit(4)
        nm = self._noise()
        fast = sample_counts(qc, 30_000, noise=nm, rng=1)
        with engine_mode(fast=False):
            slow = sample_counts(qc, 30_000, noise=nm, rng=2)
        assert fast.total_variation_distance(slow) < 0.02

    def test_seeded_rng_reproducible(self):
        qc = ghz_circuit(4)
        nm = self._noise()
        a = sample_counts(qc, 500, noise=nm, rng=123)
        b = sample_counts(qc, 500, noise=nm, rng=123)
        assert a.to_dict() == b.to_dict()

    def test_noiseless_single_group_unchanged(self):
        """Without noise there is one clean group: the fast path and the
        baseline draw identical RNG streams and identical counts."""
        qc = ghz_circuit(6)
        a = sample_counts(qc, 1000, rng=9)
        with engine_mode(fast=False):
            b = sample_counts(qc, 1000, rng=9)
        assert a.to_dict() == b.to_dict()


class TestMatrixCaching:
    def test_parameterless_matrices_shared_and_frozen(self):
        a = spec("h").matrix()
        b = spec("h").matrix()
        assert a is b
        assert not a.flags.writeable

    def test_parameterized_matrices_cached_per_angle(self):
        a = spec("rz").matrix([0.25])
        b = spec("rz").matrix([0.25])
        c = spec("rz").matrix([0.26])
        assert a is b
        assert a is not c
        np.testing.assert_allclose(a, rz_matrix(0.25), atol=1e-15)

    def test_instruction_matrix_memoized(self):
        qc = QuantumCircuit(1)
        qc.prx(0.3, 0.1, 0)
        inst = qc[0]
        assert inst.matrix() is inst.matrix()
        np.testing.assert_allclose(inst.matrix(), prx_matrix(0.3, 0.1), atol=1e-15)

    def test_cached_matrices_still_correct_in_simulation(self):
        sv = simulate_statevector(ghz_circuit(3, measure=False))
        assert abs(sv.data[0]) == pytest.approx(1 / np.sqrt(2))
        assert abs(sv.data[7]) == pytest.approx(1 / np.sqrt(2))


class TestDiagonalRunFusion:
    """Diagonal-run kernel fusion: adjacent diagonal 1q/2q gates collapse
    into one precomputed elementwise multiply in the dense engine's
    advance path, pinned against unfused application at 1e-12."""

    @staticmethod
    def _random_diag_heavy_circuit(num_qubits, depth, rng):
        qc = QuantumCircuit(num_qubits, name=f"diag{num_qubits}x{depth}")
        for _ in range(depth):
            roll = rng.random()
            if roll < 0.25:
                qc.rz(float(rng.uniform(0, 2 * np.pi)), int(rng.integers(num_qubits)))
            elif roll < 0.4:
                qc.t(int(rng.integers(num_qubits)))
            elif roll < 0.5:
                qc.append("sdg", [int(rng.integers(num_qubits))])
            elif num_qubits >= 2 and roll < 0.62:
                a = int(rng.integers(num_qubits))
                b = int(rng.integers(num_qubits - 1))
                b += b >= a
                qc.cz(a, b)
            elif num_qubits >= 2 and roll < 0.74:
                a = int(rng.integers(num_qubits))
                b = int(rng.integers(num_qubits - 1))
                b += b >= a
                qc.rzz(float(rng.uniform(0, 2 * np.pi)), a, b)
            elif roll < 0.88:
                qc.h(int(rng.integers(num_qubits)))
            else:
                a = int(rng.integers(num_qubits))
                b = int(rng.integers(num_qubits - 1))
                b += b >= a
                qc.cx(a, b)
        return qc

    def test_fused_advance_matches_unfused_1e12(self):
        from repro.simulator.engines import DenseEngine
        from repro.simulator.engines import dense as dense_mod

        rng = np.random.default_rng(61)
        for trial in range(12):
            n = int(rng.integers(2, 9))
            qc = self._random_diag_heavy_circuit(n, 60, rng)
            ops = list(qc)
            with engine_mode("fast"):
                fused = DenseEngine(qc)
                fused.advance(ops)
                prev = dense_mod.FUSE_DIAGONAL_RUNS
                try:
                    dense_mod.FUSE_DIAGONAL_RUNS = False
                    unfused = DenseEngine(qc)
                    unfused.advance(ops)
                finally:
                    dense_mod.FUSE_DIAGONAL_RUNS = prev
            np.testing.assert_allclose(
                fused.to_dense().data, unfused.to_dense().data, atol=1e-12
            )

    def test_fusion_matches_generic_reference_1e12(self):
        """Fused fast path vs the baseline generic contraction."""
        rng = np.random.default_rng(67)
        for trial in range(6):
            n = int(rng.integers(2, 8))
            qc = self._random_diag_heavy_circuit(n, 50, rng)
            with engine_mode("fast"):
                fast = simulate_statevector(qc)
                from repro.simulator.engines import DenseEngine

                eng = DenseEngine(qc)
                eng.advance(list(qc))
            with engine_mode("baseline"):
                ref = simulate_statevector(qc)
            np.testing.assert_allclose(eng.to_dense().data, ref.data, atol=1e-12)
            np.testing.assert_allclose(fast.data, ref.data, atol=1e-12)

    def test_run_detection_respects_blockers_and_barriers(self):
        from repro.circuits.dag import diagonal_runs

        qc = QuantumCircuit(3)
        qc.t(0)
        qc.h(1)        # disjoint non-diagonal: does not split the run
        qc.rz(0.3, 2)
        qc.cz(0, 2)
        qc.h(0)        # blocks qubit 0
        qc.t(0)        # must start a new run
        qc.t(1)
        runs = diagonal_runs(qc)
        assert runs == [[0, 2, 3], [5, 6]]
        qc2 = QuantumCircuit(2)
        qc2.t(0)
        qc2.barrier()
        qc2.t(0)
        assert diagonal_runs(qc2) == []  # barrier splits; singletons drop

    def test_apply_diagonal_operand_order_convention(self):
        """diag is indexed little-endian over the operand list, matching
        apply_matrix — including reversed operand order."""
        rng = np.random.default_rng(71)
        vec = random_state(4, rng)
        diag4 = np.exp(1j * rng.uniform(0, 2 * np.pi, 4))
        matrix = np.diag(diag4)
        for qubits in ([1, 3], [3, 1], [2, 0]):
            a = StateVector(4, vec).apply_diagonal(diag4, qubits)
            b = StateVector(4, vec).apply_matrix_generic(matrix, qubits)
            np.testing.assert_allclose(a.data, b.data, atol=1e-12)

    def test_fusion_in_grouped_sampling_is_invisible(self):
        """Seeded grouped sampling with fusion on vs off: identical
        counts (the fused phases differ only at float rounding)."""
        from repro.simulator.engines import dense as dense_mod

        rng = np.random.default_rng(73)
        qc = self._random_diag_heavy_circuit(6, 40, rng)
        qc.measure_all()
        nm = NoiseModel()
        nm.add_gate_error(depolarizing_error(0.03, 1), "h")
        with engine_mode("fast"):
            on = sample_counts(qc, 256, noise=nm, rng=11)
            prev = dense_mod.FUSE_DIAGONAL_RUNS
            try:
                dense_mod.FUSE_DIAGONAL_RUNS = False
                off = sample_counts(qc, 256, noise=nm, rng=11)
            finally:
                dense_mod.FUSE_DIAGONAL_RUNS = prev
        assert on.to_dict() == off.to_dict()
