"""Tests for the parameter drift model."""

import numpy as np
import pytest

from repro.errors import CalibrationError
from repro.qpu.drift import DriftConfig, DriftModel
from repro.qpu.params import nominal_calibration
from repro.qpu.topology import Topology
from repro.utils.units import DAY, HOUR


@pytest.fixture
def model(grid20):
    base = nominal_calibration(grid20, rng=0)
    return DriftModel(base, rng=np.random.default_rng(1))


class TestEvolution:
    def test_zero_dt_noop(self, model):
        before = model.effective_snapshot().median_prx_fidelity()
        model.evolve(0.0)
        assert model.effective_snapshot().median_prx_fidelity() == before

    def test_negative_dt_rejected(self, model):
        with pytest.raises(CalibrationError):
            model.evolve(-1.0)

    def test_time_advances(self, model):
        model.evolve(3600.0)
        assert model.time == pytest.approx(3600.0)

    def test_fidelity_degrades_over_days(self, model):
        fresh = model.effective_snapshot()
        model.evolve(5 * DAY)
        aged = model.effective_snapshot()
        assert aged.median_cz_fidelity() < fresh.median_cz_fidelity()
        assert aged.median_prx_fidelity() < fresh.median_prx_fidelity()

    def test_deterministic_given_seed(self, grid20):
        base = nominal_calibration(grid20, rng=0)
        a = DriftModel(base, rng=np.random.default_rng(5))
        b = DriftModel(base, rng=np.random.default_rng(5))
        a.evolve(DAY)
        b.evolve(DAY)
        assert a.effective_snapshot().summary() == b.effective_snapshot().summary()

    def test_tls_events_eventually_occur(self, grid20):
        base = nominal_calibration(grid20, rng=0)
        cfg = DriftConfig(tls_rate=1.0 / DAY)  # fast capture for the test
        model = DriftModel(base, cfg, rng=np.random.default_rng(2))
        model.evolve(5 * DAY)
        assert model.tls_active().sum() > 0

    def test_tls_depresses_t1(self, grid20):
        base = nominal_calibration(grid20, rng=0)
        cfg = DriftConfig(tls_rate=50.0 / DAY, tls_depth=0.3, tls_mean_duration=10 * DAY)
        model = DriftModel(base, cfg, rng=np.random.default_rng(3))
        model.evolve(2 * DAY)
        snap = model.effective_snapshot()
        mask = model.tls_active()
        assert mask.any()
        for q in np.nonzero(mask)[0]:
            assert snap.qubits[q].t1 < base.qubits[q].t1


class TestCalibrationEffects:
    def test_full_calibration_restores_fidelity(self, model):
        model.evolve(6 * DAY)
        degraded = model.effective_snapshot().median_cz_fidelity()
        model.apply_calibration("full")
        restored = model.effective_snapshot().median_cz_fidelity()
        assert restored > degraded

    def test_quick_restores_1q_but_not_2q(self, grid20):
        """The Section 3.2 trade-off: quick is faster but lower performance."""
        base = nominal_calibration(grid20, rng=0)
        results = {}
        for kind in ("quick", "full"):
            model = DriftModel(base, rng=np.random.default_rng(7))
            model.evolve(6 * DAY)
            model.apply_calibration(kind)
            snap = model.effective_snapshot()
            results[kind] = (snap.median_prx_fidelity(), snap.median_cz_fidelity())
        # both restore 1q to similar levels
        assert results["quick"][0] == pytest.approx(results["full"][0], abs=2e-3)
        # full restores CZ strictly better
        assert results["full"][1] > results["quick"][1]

    def test_unknown_kind_rejected(self, model):
        with pytest.raises(CalibrationError):
            model.apply_calibration("medium")

    def test_miscalibration_magnitude_resets(self, model):
        model.evolve(6 * DAY)
        before = model.miscalibration_magnitude()
        model.apply_calibration("full")
        after = model.miscalibration_magnitude()
        assert after["rms_1q"] < before["rms_1q"]
        assert after["rms_2q"] < before["rms_2q"]

    def test_snapshot_kind_label_tracks(self, model):
        model.apply_calibration("quick")
        assert model.effective_snapshot().calibration_kind == "quick"


class TestConfig:
    def test_invalid_retention_rejected(self):
        with pytest.raises(CalibrationError):
            DriftConfig(quick_2q_retention=1.5)

    def test_invalid_tau_rejected(self):
        with pytest.raises(ValueError):
            DriftConfig(miscal_tau=-1.0)

    def test_snapshot_errors_clipped(self, grid20):
        """Even extreme drift never produces probabilities > 0.5."""
        base = nominal_calibration(grid20, rng=0)
        cfg = DriftConfig(sens_2q=10.0, miscal_std_2q=5.0)
        model = DriftModel(base, cfg, rng=np.random.default_rng(9))
        model.evolve(30 * DAY)
        snap = model.effective_snapshot()
        for cp in snap.couplers.values():
            assert 0.0 <= cp.cz_error <= 0.5
