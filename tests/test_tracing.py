"""The execution flight recorder: spans, reports, and the no-op path.

Four contracts are pinned here, end to end:

1. **Tracing is observational only.**  Seeded counts are bit-identical
   with tracing on or off across every engine mode, the per-shot walk,
   and the sharded driver — the recorder never draws random numbers and
   never changes instruction visit order.
2. **The disabled path is free.**  ``tracing.span`` hands out one
   shared no-op singleton when no tracer is active; ``count``/``note``
   early-return.  ``engine_mode(trace=...)`` follows the sub-option
   discipline: validated pre-mutation, restored on exit, rejected under
   ``"baseline"``.
3. **Every run yields exactly one complete ExecutionReport** — grouped,
   sharded (worker span summaries ship home with each block's counts and
   survive a worker kill), and whole ``run_with_fallback`` ladders.
4. **Reports land on the live-metrics surface**:
   ``MetricStore.record_execution`` flattens them into queryable
   ``simulator.exec.*`` sensors (exercised in ``tests/test_telemetry.py``
   alongside the collector plugin).
"""

from __future__ import annotations

import pytest

from helpers.parity import (
    ALL_ENGINE_MODES,
    assert_counts_identical,
    counts_under_mode,
    ghz_t,
    light_noise,
)
from repro.circuits import QuantumCircuit
from repro.errors import EngineModeError
from repro.simulator import (
    NoiseModel,
    depolarizing_error,
    engine_mode,
    resilience,
    run_with_fallback,
    sample_counts,
)
from repro.simulator import sharding
from repro.simulator.sharding import sample_counts_sharded
from repro.telemetry import tracing
from repro.telemetry.tracing import ExecutionReport, SpanRecord, Tracer
from repro.testing import Fault, inject_faults


@pytest.fixture(autouse=True)
def _recorder_isolation():
    """Every test starts and ends with the recorder disabled and clean."""
    assert tracing.ENABLED is False
    assert tracing.active_tracer() is None
    yield
    tracing.ENABLED = False
    tracing._ACTIVE = None
    tracing.consume_last_report()
    tracing.reset_exec_counters()
    resilience.reset_counters()


def mid_measure_circuit(n: int = 3) -> QuantumCircuit:
    """Mid-circuit measure + reset: forces the per-shot event walk."""
    qc = QuantumCircuit(n, n)
    qc.h(0)
    for q in range(1, n):
        qc.cx(0, q)
    qc.measure(0, 0)
    qc.reset(0)
    qc.h(0)
    qc.measure_all()
    return qc


def cx_noise() -> NoiseModel:
    """Noise on ``cx`` only, so the sharded driver shares a clean prefix."""
    nm = NoiseModel()
    nm.add_gate_error(depolarizing_error(0.02, 2), "cx")
    return nm


# ---------------------------------------------------------------------------
# the Tracer itself
# ---------------------------------------------------------------------------


class TestTracer:
    def test_span_tree_nests(self):
        tracer = Tracer()
        with tracer.span("outer", mode="fast") as outer:
            with tracer.span("inner") as inner:
                inner.set(rows=3)
        assert [r.name for r in tracer.roots] == ["outer"]
        assert outer.attrs == {"mode": "fast"}
        assert [c.name for c in outer.children] == ["inner"]
        assert inner.attrs == {"rows": 3}
        assert outer.seconds >= inner.seconds >= 0.0

    def test_span_aggregates_fold_repeats(self):
        tracer = Tracer()
        with tracer.span("run"):
            for _ in range(3):
                with tracer.span("window"):
                    pass
        seconds, counts = tracer.span_aggregates()
        assert counts == {"run": 1, "window": 3}
        assert set(seconds) == {"run", "window"}

    def test_counters_notes_and_max_notes(self):
        tracer = Tracer()
        tracer.count("hits")
        tracer.count("hits", 2)
        tracer.note("mode", "mps")
        tracer.note_max("bond", 2)
        tracer.note_max("bond", 8)
        tracer.note_max("bond", 4)
        assert tracer.counters == {"hits": 3}
        assert tracer.notes == {"mode": "mps"}
        assert tracer.max_notes == {"bond": 8}

    def test_summary_absorb_roundtrip(self):
        """The worker→parent channel: ``summary()`` is a plain dict the
        parent folds into ``block_spans`` (Counts.merge-style)."""
        worker = Tracer()
        with worker.span("shard.block"):
            with worker.span("engine.advance_window"):
                pass
        worker.count("plan_cache.hits")
        worker.note_max("max_bond_dimension", 4)
        parent = Tracer()
        parent.absorb_summary(worker.summary())
        parent.absorb_summary(worker.summary())
        assert parent.block_spans["shard.block"][0] == 2
        assert parent.block_spans["engine.advance_window"][0] == 2
        assert parent.counters == {"plan_cache.hits": 2}
        assert parent.max_notes == {"max_bond_dimension": 4.0}

    def test_span_record_to_dict(self):
        record = SpanRecord("engine.prepare", {"qubits": 4})
        record.children.append(SpanRecord("plan.lookup", {}))
        d = record.to_dict()
        assert d["name"] == "engine.prepare"
        assert d["attrs"] == {"qubits": 4}
        assert d["children"][0] == {"name": "plan.lookup", "seconds": 0.0}


# ---------------------------------------------------------------------------
# the disabled (no-op) path
# ---------------------------------------------------------------------------


class TestDisabledPath:
    def test_disabled_span_is_one_shared_singleton(self):
        """The micro-contract the overhead floor rests on: disabled
        ``span()`` allocates nothing — every call returns the same
        module-level no-op object."""
        assert tracing.span("a") is tracing.span("b", qubits=20)

    def test_noop_span_supports_the_full_protocol(self):
        with tracing.span("anything") as record:
            assert record.set(bond=2) is record

    def test_disabled_helpers_return_immediately(self):
        tracing.count("x", 5)
        tracing.note("k", "v")
        tracing.note_max("m", 1.0)
        assert tracing.active_tracer() is None
        assert tracing.last_report() is None

    def test_run_scope_disabled_records_nothing(self):
        with tracing.run_scope("sampler.run", mode="fast") as record:
            assert record is None
        assert tracing.last_report() is None


# ---------------------------------------------------------------------------
# the engine_mode(trace=...) facade
# ---------------------------------------------------------------------------


class TestTraceFacade:
    def test_trace_arms_and_restores_the_flag(self):
        assert tracing.ENABLED is False
        with engine_mode("fast", trace=True):
            assert tracing.ENABLED is True
            with engine_mode("mps", trace=False):
                assert tracing.ENABLED is False
            assert tracing.ENABLED is True
        assert tracing.ENABLED is False

    def test_trace_none_leaves_the_recorder_alone(self):
        with engine_mode("fast", trace=True):
            with engine_mode("batched"):
                assert tracing.ENABLED is True

    def test_trace_restores_after_exception(self):
        with pytest.raises(RuntimeError):
            with engine_mode("fast", trace=True):
                raise RuntimeError("boom")
        assert tracing.ENABLED is False

    def test_trace_rejected_under_baseline(self):
        """The seed path stays free of even no-op instrumentation."""
        with pytest.raises(EngineModeError, match="trace"):
            with engine_mode("baseline", trace=True):
                pass
        assert tracing.ENABLED is False

    @pytest.mark.parametrize("bad", [1, "on", 0.5])
    def test_trace_validates_type(self, bad):
        with pytest.raises(EngineModeError, match="trace"):
            with engine_mode("fast", trace=bad):
                pass

    def test_failed_validation_leaves_flag_untouched(self):
        with pytest.raises(EngineModeError):
            with engine_mode("fast", trace="yes"):
                pass
        assert tracing.ENABLED is False


# ---------------------------------------------------------------------------
# bit-identity: tracing must never move a count
# ---------------------------------------------------------------------------


class TestBitIdentity:
    @pytest.mark.parametrize("mode", ALL_ENGINE_MODES)
    def test_grouped_walk(self, mode):
        qc = ghz_t(5)
        plain = counts_under_mode(qc, mode, 7, noise=light_noise(), shots=256)
        traced = counts_under_mode(
            qc, mode, 7, noise=light_noise(), shots=256, trace=True
        )
        assert_counts_identical(plain, traced, context=("grouped", mode))

    @pytest.mark.parametrize("mode", ("fast", "hybrid", "mps"))
    def test_per_shot_walk(self, mode):
        qc = mid_measure_circuit(3)
        plain = counts_under_mode(qc, mode, 11, shots=128)
        traced = counts_under_mode(qc, mode, 11, shots=128, trace=True)
        assert_counts_identical(plain, traced, context=("per_shot", mode))

    def test_sharded_driver(self):
        qc = ghz_t(6)
        plain = counts_under_mode(
            qc, "fast", 5, noise=cx_noise(), shots=600, workers=2
        )
        traced = counts_under_mode(
            qc, "fast", 5, noise=cx_noise(), shots=600, workers=2, trace=True
        )
        assert_counts_identical(plain, traced, context=("sharded",))


# ---------------------------------------------------------------------------
# ExecutionReport content
# ---------------------------------------------------------------------------


class TestExecutionReport:
    def test_grouped_run_report(self):
        qc = ghz_t(5)
        with engine_mode("fast", trace=True):
            sample_counts(qc, 256, noise=light_noise(), rng=7)
        report = tracing.last_report()
        assert isinstance(report, ExecutionReport)
        assert report.engine == "dense"
        assert report.mode == "fast"
        assert report.num_qubits == 5
        assert report.shots == 256
        assert report.wall_seconds > 0.0
        assert report.estimated_peak_bytes == 3 * (16 << 5)
        for phase in (
            "sampler.run",
            "sampler.grouped",
            "sampler.realizations",
            "sampler.readout",
            "resilience.admission",
            "plan.lookup",
            "engine.prepare",
            "engine.advance_window",
        ):
            assert phase in report.phase_seconds, phase
            assert report.span_counts[phase] >= 1
        assert report.counters["sampler.trajectory_groups"] >= 1
        assert report.plan_cache_hits + report.plan_cache_misses >= 1

    def test_per_shot_run_report(self):
        with engine_mode("fast", trace=True):
            sample_counts(mid_measure_circuit(3), 64, rng=3)
        report = tracing.last_report()
        assert "sampler.per_shot" in report.phase_seconds
        assert "sampler.grouped" not in report.phase_seconds

    def test_mps_run_carries_bond_telemetry(self):
        with engine_mode("mps", trace=True):
            sample_counts(ghz_t(5), 64, rng=7)
        report = tracing.last_report()
        assert report.engine == "mps"
        assert "engine.mps_window" in report.phase_seconds
        assert report.max_bond_dimension >= 2
        assert report.truncation_error == 0.0

    def test_dense_run_leaves_mps_fields_none(self):
        with engine_mode("fast", trace=True):
            sample_counts(ghz_t(4), 32, rng=1)
        report = tracing.last_report()
        assert report.max_bond_dimension is None
        assert report.truncation_error is None

    def test_plan_cache_hit_property(self):
        hit = ExecutionReport(
            engine="dense",
            mode="fast",
            num_qubits=4,
            shots=32,
            wall_seconds=0.1,
            plan_cache_hits=1,
        )
        miss = ExecutionReport(
            engine="dense",
            mode="fast",
            num_qubits=4,
            shots=32,
            wall_seconds=0.1,
            plan_cache_hits=1,
            plan_cache_misses=1,
        )
        assert hit.plan_cache_hit and not miss.plan_cache_hit
        assert hit.to_dict()["plan_cache_hit"] is True

    def test_consume_last_report_claims_exactly_once(self):
        with engine_mode("fast", trace=True):
            sample_counts(ghz_t(4), 32, rng=1)
        assert tracing.consume_last_report() is not None
        assert tracing.consume_last_report() is None
        assert tracing.last_report() is None

    def test_untraced_run_leaves_no_report(self):
        sample_counts(ghz_t(4), 32, rng=1)
        assert tracing.last_report() is None

    def test_cumulative_exec_counters_fold_across_runs(self):
        tracing.reset_exec_counters()
        with engine_mode("fast", trace=True):
            sample_counts(ghz_t(4), 32, rng=1)
            sample_counts(ghz_t(4), 16, rng=2)
        totals = tracing.exec_counters()
        assert totals["runs"] == 2.0
        assert totals["shots"] == 48.0
        assert totals["wall_seconds"] > 0.0
        assert totals["events.sampler.trajectory_groups"] >= 2.0


# ---------------------------------------------------------------------------
# sharded runs: worker traces ship home with the counts
# ---------------------------------------------------------------------------


class TestShardedReport:
    def test_parent_report_merges_worker_spans(self):
        qc = ghz_t(6)
        with engine_mode("fast", workers=2, trace=True):
            sample_counts(qc, 700, noise=cx_noise(), rng=5)
        report = tracing.last_report()
        assert report.mode == "fast"
        assert report.shots == 700
        assert "sampler.sharded" in report.phase_seconds
        assert "shard.submit" in report.phase_seconds
        # 700 shots → 3 blocks of ≤256; every block's worker-side trace
        # came home with its Counts and folded into shard_spans
        assert report.counters["shard.blocks"] == 3
        assert report.shard_spans["shard.block"]["count"] == 3
        assert report.shard_spans["sampler.grouped"]["count"] == 3
        assert report.shard_spans["engine.prepare"]["count"] >= 3
        assert report.shard_spans["shard.block"]["seconds"] > 0.0

    def test_single_worker_inline_path_also_reports(self):
        with engine_mode("fast", trace=True):
            sample_counts_sharded(ghz_t(5), 300, seed=3, workers=1)
        report = tracing.last_report()
        assert report.counters["shard.blocks"] == 2
        assert report.shard_spans["shard.block"]["count"] == 2

    @pytest.mark.faults
    def test_worker_kill_still_yields_complete_report(self, monkeypatch):
        """The acceptance pin: a killed worker loses one block attempt,
        the pool rebuilds and re-runs it — and the parent report is
        still complete, with the recovery written into its counters and
        every completed block's spans accounted for."""
        monkeypatch.setattr(sharding, "REBUILD_BACKOFF_BASE", 0.0)
        qc = ghz_t(6)
        with engine_mode("fast", workers=2, trace=True):
            with inject_faults(
                Fault(
                    "shard.block",
                    action="kill",
                    index=0,
                    times=1,
                    worker_only=True,
                )
            ):
                counts = sample_counts(qc, 700, noise=cx_noise(), rng=5)
        assert counts.shots == 700
        report = tracing.last_report()
        assert report is not None
        # the recovery is in the report, not lost with the dead worker
        assert report.counters["shard.retries"] >= 1
        assert report.counters["shard.pool_rebuilds"] == 1
        assert report.resilience_events["shard.retries"] >= 1
        assert "shard.rebuild" in report.phase_seconds
        # all 3 blocks eventually completed and shipped their traces
        assert report.shard_spans["shard.block"]["count"] == 3

    @pytest.mark.faults
    def test_recovered_counts_match_traced_and_untraced(self, monkeypatch):
        monkeypatch.setattr(sharding, "REBUILD_BACKOFF_BASE", 0.0)
        qc = ghz_t(6)
        clean = sample_counts_sharded(
            qc, 700, noise=cx_noise(), seed=5, workers=1
        )
        with engine_mode("fast", trace=True):
            with inject_faults(
                Fault(
                    "shard.block",
                    action="kill",
                    index=1,
                    times=1,
                    worker_only=True,
                )
            ):
                faulted = sample_counts_sharded(
                    qc, 700, noise=cx_noise(), seed=5, workers=2
                )
        assert_counts_identical(clean, faulted, context=("traced-recovery",))


# ---------------------------------------------------------------------------
# the fallback ladder reports as one run
# ---------------------------------------------------------------------------


class TestLadderReport:
    def test_degraded_request_yields_one_report_recording_the_hop(self):
        with engine_mode("fast", trace=True):
            result = run_with_fallback(ghz_t(30), 64, seed=3, mode="fast")
        assert result.mode == "mps"
        report = tracing.last_report()
        assert report is not None
        # notes are last-write-wins, so the report carries the mode that
        # actually served the request; the requested mode lives on the
        # root resilience.fallback span
        assert report.mode == "mps"
        assert "resilience.fallback" in report.phase_seconds
        assert report.span_counts["resilience.fallback_hop"] == 1
        assert report.counters["resilience.engine_fallbacks"] == 1
        assert report.counters["resilience.admission_rejects"] == 1
        assert report.resilience_events["resilience.engine_fallbacks"] == 1
        # the winning MPS attempt nested inside the same run scope
        assert "sampler.run" in report.phase_seconds
        assert report.max_bond_dimension is not None

    def test_clean_ladder_records_no_hops(self):
        with engine_mode("fast", trace=True):
            run_with_fallback(ghz_t(4), 32, seed=1, mode="fast")
        report = tracing.last_report()
        assert "resilience.fallback_hop" not in report.span_counts
        assert "resilience.engine_fallbacks" not in report.counters
