"""Cache-blocked wide-state execution.

Covers the three layers PR 8 added, bottom-up:

* the lazy qubit-remap layer on :class:`StateVector` /
  :class:`BatchedStateVector` (``placement_permutation``,
  ``permutation_transpose_order``, ``remap_low``/``unwind_remap``);
* the value-independent sweep schedule (``plan_blocked_window``) and its
  worthwhileness heuristic, plus the shared ``window_program`` resolver
  that keeps planned and unplanned execution on one code path;
* end-to-end seeded-count parity with blocking toggled off — the same
  bit-identical standard the engine matrix pins, here across the
  blocked/unblocked axis for grouped and per-shot walks.

Tile widths derive from ``BATCH_MAX_BYTES``, so the suite shrinks the
budget (``engine_mode(..., batch_max_bytes=...)`` or explicit
``tile_qubits=``) to exercise the wide regime at tier-1-cheap widths.
"""

import numpy as np
import pytest

from helpers.parity import (
    assert_counts_identical,
    counts_under_mode,
    ghz_t,
    heavy_noise,
)
from repro.circuits import QuantumCircuit, brickwork_circuit
from repro.simulator import NoiseModel, depolarizing_error, engine_mode
from repro.simulator.batched import BatchedStateVector
from repro.simulator.engines import dense
from repro.simulator.statevector import (
    StateVector,
    placement_permutation,
    permutation_transpose_order,
)


def random_state(num_qubits: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    amps = rng.normal(size=1 << num_qubits) + 1j * rng.normal(size=1 << num_qubits)
    return amps / np.linalg.norm(amps)


def brickwork_noise() -> NoiseModel:
    """Noise on the brickwork gate set (cz/ry, not the GHZ cx/h)."""
    nm = NoiseModel()
    nm.add_gate_error(depolarizing_error(0.02, 2), "cz")
    nm.add_gate_error(depolarizing_error(0.01, 1), "ry")
    return nm


class TestRemapLayer:
    def test_placement_permutation_none_when_already_low(self):
        assert placement_permutation(None, [0, 2], 3, 6) is None
        # and starting from a non-trivial perm that already satisfies it
        perm = [1, 0, 2, 3, 4, 5]
        assert placement_permutation(perm, [0, 1], 3, 6) is None

    def test_placement_permutation_swaps_minimally(self):
        perm = placement_permutation(None, [5], 2, 6)
        assert perm is not None
        assert perm[5] < 2
        # the displaced low qubit took qubit 5's old slot; nobody else moved
        displaced = perm.index(5)
        moved = [q for q in range(6) if perm[q] != q]
        assert sorted(moved) == sorted([5, displaced])
        # a permutation is still a permutation
        assert sorted(perm) == list(range(6))

    def test_placement_permutation_keeps_wanted_low_qubits(self):
        # qubit 1 is wanted *and* already low: the free-slot scan must
        # not evict it to make room for qubit 4.
        perm = placement_permutation(None, [1, 4], 2, 5)
        assert perm is not None
        assert perm[1] < 2 and perm[4] < 2

    def test_transpose_order_round_trips(self):
        n = 4
        rng = np.random.default_rng(3)
        new = list(rng.permutation(n))
        old = list(range(n))
        arr = np.arange(1 << n)
        moved = (
            arr.reshape((2,) * n)
            .transpose(permutation_transpose_order(old, new, n))
            .reshape(-1)
        )
        back = (
            moved.reshape((2,) * n)
            .transpose(permutation_transpose_order(new, old, n))
            .reshape(-1)
        )
        assert np.array_equal(back, arr)

    def test_remap_low_is_exact_and_unwinds_at_data(self):
        sv = StateVector(5, random_state(5, 7))
        ref = sv._data.copy()
        sv.remap_low([4], 2)
        assert sv._perm is not None
        assert not np.array_equal(sv._data, ref)  # buffer really moved
        # .data unwinds: a transpose is a pure reordering, bit-exact
        assert np.array_equal(sv.data, ref)
        assert sv._perm is None

    def test_gates_on_remapped_state_match_canonical(self):
        plain = StateVector(5, random_state(5, 11))
        remapped = plain.copy()
        remapped.remap_low([3, 4], 2)
        h = QuantumCircuit(1)
        h.h(0)
        gate = next(iter(h)).matrix()
        cx = QuantumCircuit(2)
        cx.cx(0, 1)
        cx_m = next(iter(cx)).matrix()
        for sv in (plain, remapped):
            sv.apply_matrix(gate, [4])
            sv.apply_matrix(cx_m, [3, 0])
            sv.apply_diagonal(np.array([1.0, 1j]), [2])
        np.testing.assert_allclose(remapped.data, plain.data, rtol=0, atol=1e-14)

    def test_batched_remap_never_rebinds_the_buffer(self):
        rows = np.stack([random_state(4, s) for s in (1, 2, 3)])
        batch = BatchedStateVector(4, 3, rows)
        buf = batch._data
        batch.remap_low([3], 2)
        assert batch._perm is not None
        assert batch._data is buf  # sharded views must stay valid
        batch.unwind_remap()
        assert batch._data is buf
        np.testing.assert_allclose(batch.data, rows, rtol=0, atol=0)


class TestBlockedSchedule:
    def _ops(self, builders, n):
        qc = QuantumCircuit(n)
        for name, qubits in builders:
            qc.append(name, list(qubits))
        return list(qc)

    def test_none_when_state_fits_the_tile(self):
        ops = self._ops([("h", [0])] * 8, 3)
        assert dense.plan_blocked_window(ops, None, 3, tile_qubits=3) is None

    def test_none_when_switched_off(self, monkeypatch):
        ops = self._ops([("h", [0])] * 8, 6)
        monkeypatch.setattr(dense, "BLOCKED_SWEEPS", False)
        assert dense.plan_blocked_window(ops, None, 6, tile_qubits=2) is None

    def test_sweep_splits_when_the_union_overflows(self):
        ops = self._ops([("h", [0]), ("h", [1])] * 3 + [("h", [2])] * 6, 6)
        sched = dense.plan_blocked_window(ops, None, 6, tile_qubits=2)
        assert sched is not None
        assert [seg[0] for seg in sched] == [(0, 1), (2,)]
        assert [seg[1] for seg in sched] == [tuple(range(6)), tuple(range(6, 12))]
        assert all(not seg[2] for seg in sched)

    def test_diagonals_and_noops_ride_in_any_segment(self):
        # t(5) is diagonal and sits above the tile; barrier is a noop —
        # neither may split the low sweep or widen its placement.
        ops = self._ops(
            [("h", [0]), ("t", [5]), ("barrier", []), ("h", [1]), ("h", [0])], 6
        )
        sched = dense.plan_blocked_window(ops, None, 6, tile_qubits=2)
        assert sched == (((0, 1), (0, 1, 2, 3, 4), False),)

    def test_oversized_entry_becomes_a_wide_singleton(self):
        ops = self._ops([("h", [0])] * 4 + [("cx", [0, 1])] + [("h", [0])] * 4, 6)
        sched = dense.plan_blocked_window(ops, None, 6, tile_qubits=1)
        wides = [seg for seg in sched if seg[2]]
        assert wides == [((), (4,), True)]

    def test_short_window_is_not_worth_a_sweep(self):
        ops = self._ops([("h", [0])], 6)
        assert dense.plan_blocked_window(ops, None, 6, tile_qubits=2) is None

    def test_remap_heavy_window_is_not_worth_blocking(self):
        # Two sweeps, one forcing a remap (placement reaches qubit 2+):
        # 4 applied items never amortize 2 sweeps + 1 transpose …
        high_low = self._ops([("h", [2]), ("h", [3]), ("h", [0]), ("h", [1])], 6)
        assert dense.plan_blocked_window(high_low, None, 6, tile_qubits=2) is None
        # … while the same item count entirely inside the tile does.
        low = self._ops([("h", [0]), ("h", [1]), ("h", [0]), ("h", [1])], 6)
        assert dense.plan_blocked_window(low, None, 6, tile_qubits=2) is not None

    def test_tile_width_tracks_the_batch_budget(self):
        default = dense.blocked_tile_qubits()
        with engine_mode("fast", batch_max_bytes=1024):
            assert dense.blocked_tile_qubits() == 3
        assert dense.blocked_tile_qubits() == default


class TestExecuteBlocked:
    @staticmethod
    def _local_then_high(seed: int) -> QuantumCircuit:
        """A 6-qubit window that blocks at tile 3: a dense tile-local
        chunk with high-qubit diagonals riding (tile slicer), then a
        chunk on qubits 3–4 whose sweep forces a remap."""
        rng = np.random.default_rng(seed)
        qc = QuantumCircuit(6)
        for _ in range(3):
            for q in (0, 1, 2):
                qc.ry(float(rng.uniform(-np.pi, np.pi)), q)
            qc.cz(0, 1)
            qc.cx(1, 2)
            qc.t(4)
            qc.rz(float(rng.uniform(-np.pi, np.pi)), 5)
        for _ in range(3):
            qc.h(3)
            qc.cx(3, 4)
            qc.ry(float(rng.uniform(-np.pi, np.pi)), 4)
            qc.cz(3, 4)
        return qc

    def _window(self, qc, num_qubits, tile_qubits):
        ops = [inst for inst in qc if inst.name != "measure"]
        partition = dense.partition_window(ops)
        items = (
            dense.materialize_items(ops, partition)
            if partition is not None
            else list(ops)
        )
        sched = dense.plan_blocked_window(
            ops, partition, num_qubits, tile_qubits=tile_qubits
        )
        assert sched is not None, "workload must engage blocking"
        return items, sched

    def test_blocked_sweep_matches_plain_application_scalar(self):
        qc = self._local_then_high(5)
        items, sched = self._window(qc, 6, 3)
        blocked = StateVector(6, random_state(6, 21))
        plain = blocked.copy()
        dense.execute_blocked(blocked, items, sched, tile_qubits=3)
        dense.apply_items(plain, items)
        np.testing.assert_allclose(blocked.data, plain.data, rtol=0, atol=1e-12)

    def test_blocked_sweep_matches_plain_application_batched(self):
        qc = self._local_then_high(9)
        items, sched = self._window(qc, 6, 3)
        rows = np.stack([random_state(6, s) for s in (4, 5, 6, 7)])
        batch = BatchedStateVector(6, 4, rows)
        buf = batch._data
        dense.execute_blocked(batch, items, sched, tile_qubits=3)
        assert batch._data is buf  # tile sweeps write in place
        for r in range(4):
            plain = StateVector(6, rows[r])
            dense.apply_items(plain, items)
            np.testing.assert_allclose(
                batch.data[r], plain.data, rtol=0, atol=1e-12
            )

    def test_window_program_agrees_planned_and_unplanned(self):
        from repro.compiler import plans

        qc = brickwork_circuit(5, 8, seed=2, measure=False)
        instructions = list(qc)
        with engine_mode("fast", batch_max_bytes=1024):
            plans.plan_cache_clear()
            bound = plans.plan_for(qc).bind(instructions)
            stop = len(instructions)
            unplanned = dense.window_program(instructions, 0, stop, None, 5)
            planned = dense.window_program(instructions, 0, stop, bound, 5)
        assert planned[1] == unplanned[1]  # identical segment tuples
        sv_a = StateVector(5, random_state(5, 31))
        sv_b = sv_a.copy()
        dense.apply_items(sv_a, unplanned[0])
        dense.apply_items(sv_b, planned[0])
        np.testing.assert_allclose(sv_a.data, sv_b.data, rtol=0, atol=1e-14)

    def test_options_key_pins_the_blocking_toggles(self, monkeypatch):
        from repro.compiler import plans

        base = plans._options_key()
        monkeypatch.setattr(dense, "BLOCKED_SWEEPS", False)
        assert plans._options_key() != base
        monkeypatch.setattr(dense, "BLOCKED_SWEEPS", True)
        with engine_mode("fast", batch_max_bytes=4096):
            assert plans._options_key() != base


class TestBlockedParity:
    """Seeded counts must be bit-identical with blocking on vs off."""

    @staticmethod
    def _counts(qc, mode, *, blocked, noise, seed, **opts):
        prev = dense.BLOCKED_SWEEPS
        dense.BLOCKED_SWEEPS = blocked
        try:
            return counts_under_mode(qc, mode, seed, noise=noise, shots=192, **opts)
        finally:
            dense.BLOCKED_SWEEPS = prev

    @pytest.mark.parametrize("mode", ["fast", "batched", "hybrid"])
    def test_blocked_toggle_keeps_seeded_counts(self, mode):
        qc = ghz_t(8)
        for seed in (0, 1):
            on = self._counts(
                qc, mode, blocked=True, noise=heavy_noise(), seed=seed,
                batch_max_bytes=2048,
            )
            off = self._counts(
                qc, mode, blocked=False, noise=heavy_noise(), seed=seed,
                batch_max_bytes=2048,
            )
            assert_counts_identical(on, off, context=(mode, "blocked-toggle", seed))

    @pytest.mark.parametrize("mode", ["fast", "batched"])
    def test_blocked_toggle_on_deep_brickwork_grouped_walks(self, mode):
        # Sparse per-chunk injection sites at depth: the regime where the
        # wide batched walk engages (site-density gate) and sweeps block.
        qc = brickwork_circuit(7, 16, seed=1)
        on = self._counts(
            qc, mode, blocked=True, noise=brickwork_noise(), seed=5,
            batch_max_bytes=1024,
        )
        off = self._counts(
            qc, mode, blocked=False, noise=brickwork_noise(), seed=5,
            batch_max_bytes=1024,
        )
        assert_counts_identical(on, off, context=(mode, "brickwork", 5))

    def test_blocked_toggle_with_sharded_workers(self):
        qc = ghz_t(8)
        kwargs = dict(
            noise=heavy_noise(), seed=3, batch_max_bytes=2048, workers=2
        )
        on = self._counts(qc, "batched", blocked=True, **kwargs)
        off = self._counts(qc, "batched", blocked=False, **kwargs)
        assert_counts_identical(on, off, context=("batched", "sharded", 3))

    def test_clean_circuit_blocked_toggle(self):
        qc = ghz_t(9)
        on = self._counts(
            qc, "fast", blocked=True, noise=None, seed=8, batch_max_bytes=1024
        )
        off = self._counts(
            qc, "fast", blocked=False, noise=None, seed=8, batch_max_bytes=1024
        )
        assert_counts_identical(on, off, context=("fast", "clean", 8))
