"""Smoke test for the perf harness: ``scripts/bench.py --quick --check``
must run inside the tier-1 time budget, emit a schema-valid
``BENCH_simulator.json``, and hold every speedup floor (and feasibility
ceiling) recorded in the committed reference artifact.

Schema ``repro.bench.simulator/v10`` has two entry shapes: paired lanes
(``baseline_seconds`` / ``fast_seconds`` / ``speedup``, optionally a
``floor``) for benchmarks with a before/after comparison, and
single-lane entries (``seconds``) for workloads no dense baseline can
represent.  v10 adds the observability lane — ``tracing_overhead``, the
same grouped sampling workload timed with the flight recorder off vs on,
with a floor pinning the traced run within ~10% of untraced — on top of
v9's fault-tolerance lane (``sharded_with_faults``), v8's cache-blocked
wide-state lanes (``blocked_wide_dense`` / ``batched_wide_grouped``),
v7's ``plan_cache_parameterized`` lane and v6's ``batched_ghz_grouped``
/ ``sharded_throughput`` lanes and per-entry ``workers`` counts — all
enforced by ``--check``, the bench regression guard this suite keeps
wired into tier-1.
"""

import importlib.util
import json
import os
import pathlib
import subprocess
import sys

REPO = pathlib.Path(__file__).resolve().parents[1]

PAIRED_ENTRY_KEYS = {
    "name",
    "params",
    "baseline_seconds",
    "fast_seconds",
    "speedup",
}

SINGLE_LANE_KEYS = {"name", "params", "seconds"}


def _load_bench_module():
    spec = importlib.util.spec_from_file_location(
        "bench_under_test", REPO / "scripts" / "bench.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_bench_quick_check_emits_valid_schema_and_holds_floors(tmp_path):
    """One quick run doubles as schema validation and regression guard:
    ``--check`` exits nonzero if any lane drops below its committed
    floor (or above its committed ceiling), which would fail this
    tier-1 test."""
    out = tmp_path / "BENCH_simulator.json"
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src") + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [
            sys.executable,
            str(REPO / "scripts" / "bench.py"),
            "--quick",
            "--check",
            "--out",
            str(out),
        ],
        capture_output=True,
        text=True,
        env=env,
        timeout=300,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "--check passed" in proc.stdout
    payload = json.loads(out.read_text())
    assert payload["schema"] == "repro.bench.simulator/v10"
    assert payload["quick"] is True
    assert isinstance(payload["config"], dict)
    names = set()
    for entry in payload["benchmarks"]:
        if "seconds" in entry:
            assert SINGLE_LANE_KEYS <= set(entry), entry
            assert entry["seconds"] > 0
            if "max_seconds" in entry:
                assert entry["max_seconds"] > 0
        else:
            assert PAIRED_ENTRY_KEYS <= set(entry), entry
            assert entry["baseline_seconds"] > 0
            assert entry["fast_seconds"] > 0
            assert entry["speedup"] == entry["baseline_seconds"] / entry["fast_seconds"]
            if "floor" in entry:
                assert entry["floor"] > 0
        # v6: every lane states the worker count it ran with
        assert isinstance(entry["params"]["workers"], int)
        assert entry["params"]["workers"] >= 1
        names.add(entry["name"])
    # the acceptance-gate benchmarks and the workload lenses must exist
    assert "ghz_shot_sampling_grouped" in names
    assert "grouped_vs_per_shot" in names
    assert "vqe_iteration_sampled" in names
    assert "ghz_sampling_stabilizer" in names
    assert "stabilizer_scaling_ghz" in names
    assert "hybrid_segment_ghz_t" in names
    assert "stabilizer_packed_ghz" in names
    assert "diagonal_fusion_dense" in names
    assert "mps_brickwork" in names
    assert "mps_qaoa_wide" in names
    assert "batched_ghz_grouped" in names
    assert "blocked_wide_dense" in names
    assert "batched_wide_grouped" in names
    assert "sharded_throughput" in names
    assert "sharded_with_faults" in names
    assert "plan_cache_parameterized" in names
    assert "tracing_overhead" in names


def test_committed_artifact_is_v10_with_floors_and_wide_scaling():
    """The committed reference must carry the v10 surface --check relies
    on: floors on the acceptance lanes (now including the tracing
    overhead gate), the 256/512/1024-qubit packed scaling lanes, and the
    feasibility lanes with their ceilings."""
    payload = json.loads((REPO / "BENCH_simulator.json").read_text())
    assert payload["schema"] == "repro.bench.simulator/v10"
    floors = {e["name"] for e in payload["benchmarks"] if "floor" in e}
    assert "stabilizer_packed_ghz" in floors
    assert "diagonal_fusion_dense" in floors
    assert "ghz_shot_sampling_grouped" in floors
    assert "mps_brickwork" in floors
    assert "batched_ghz_grouped" in floors
    assert "blocked_wide_dense" in floors
    assert "batched_wide_grouped" in floors
    assert "plan_cache_parameterized" in floors
    assert "tracing_overhead" in floors
    scaling_sizes = {
        e["params"]["num_qubits"]
        for e in payload["benchmarks"]
        if e["name"] == "stabilizer_scaling_ghz"
    }
    assert {256, 512, 1024} <= scaling_sizes
    packed = [
        e for e in payload["benchmarks"] if e["name"] == "stabilizer_packed_ghz"
    ]
    assert packed and packed[0]["params"]["num_qubits"] == 100
    # the packed-tableau acceptance gate: ≥5× over the uint8 tableau
    assert packed[0]["speedup"] >= 5.0
    wide = [e for e in payload["benchmarks"] if e["name"] == "mps_qaoa_wide"]
    assert wide, "committed artifact lost the mps_qaoa_wide lane"
    entry = wide[0]
    # the MPS acceptance gate: a 64-qubit branching-tail workload —
    # infeasible on every other non-Clifford path — sampled in seconds,
    # with the truncation loss reported and below the recorded budget
    assert entry["params"]["num_qubits"] >= 64
    assert "max_seconds" in entry and entry["seconds"] <= entry["max_seconds"]
    assert "truncation_error" in entry
    assert entry["truncation_error"] <= 1e-9
    assert entry["max_bond_dimension"] >= 1
    # the batched-execution acceptance gate: the committed lane must
    # beat its floor (seeded counts are bit-identical in both lanes, so
    # the speedup is pure dispatch amortization)
    batched = [
        e for e in payload["benchmarks"] if e["name"] == "batched_ghz_grouped"
    ]
    assert batched, "committed artifact lost the batched_ghz_grouped lane"
    assert batched[0]["speedup"] >= batched[0]["floor"] >= 1.5
    # the sharding feasibility gate: single-lane, records its worker
    # count and block size, and stays under its ceiling
    sharded = [
        e for e in payload["benchmarks"] if e["name"] == "sharded_throughput"
    ]
    assert sharded, "committed artifact lost the sharded_throughput lane"
    assert sharded[0]["seconds"] <= sharded[0]["max_seconds"]
    assert sharded[0]["params"]["workers"] >= 1
    assert sharded[0]["params"]["block_shots"] >= 1
    # the fault-recovery feasibility gate: the committed lane injects a
    # worker kill on every repeat, so the recorded recovery counters
    # prove the fault actually fired, and the wall clock (including the
    # pool rebuild) stays under the ceiling
    faulted = [
        e for e in payload["benchmarks"] if e["name"] == "sharded_with_faults"
    ]
    assert faulted, "committed artifact lost the sharded_with_faults lane"
    assert faulted[0]["seconds"] <= faulted[0]["max_seconds"]
    assert faulted[0]["params"]["workers"] >= 2
    assert faulted[0]["params"]["block_shots"] >= 1
    assert faulted[0]["params"]["injected_fault"] == "worker-kill@block1"
    assert faulted[0]["pool_rebuilds"] >= 1
    # the cache-blocked wide-state acceptance gate: the committed dense
    # lane must clear the ≥1.3× floor at a width past the tile, and the
    # wide batched lane (above the old 13-qubit engagement cap) must
    # record the budget/tile it ran with and hold its no-regression floor
    blocked = [
        e for e in payload["benchmarks"] if e["name"] == "blocked_wide_dense"
    ]
    assert blocked, "committed artifact lost the blocked_wide_dense lane"
    assert blocked[0]["speedup"] >= blocked[0]["floor"] >= 1.3
    assert blocked[0]["params"]["num_qubits"] > blocked[0]["params"]["tile_qubits"]
    assert blocked[0]["params"]["batch_max_bytes"] >= 1024
    wide_batched = [
        e for e in payload["benchmarks"] if e["name"] == "batched_wide_grouped"
    ]
    assert wide_batched, "committed artifact lost the batched_wide_grouped lane"
    assert wide_batched[0]["speedup"] >= wide_batched[0]["floor"]
    assert wide_batched[0]["params"]["num_qubits"] > 13
    # the plan-cache acceptance gate: warm bindings of one ansatz must
    # beat cold (cache cleared per binding) by the committed floor
    plan = [
        e
        for e in payload["benchmarks"]
        if e["name"] == "plan_cache_parameterized"
    ]
    assert plan, "committed artifact lost the plan_cache_parameterized lane"
    assert plan[0]["speedup"] >= plan[0]["floor"] >= 2.0
    assert plan[0]["params"]["bindings"] >= 2
    # the observability cost gate: the committed tracing lane is a
    # paired off-vs-on ratio near 1.0×, and must clear its ~10%-overhead
    # floor (off_seconds / on_seconds >= 0.9)
    tracing = [
        e for e in payload["benchmarks"] if e["name"] == "tracing_overhead"
    ]
    assert tracing, "committed artifact lost the tracing_overhead lane"
    assert tracing[0]["speedup"] >= tracing[0]["floor"] >= 0.9
    assert tracing[0]["params"]["shots"] >= 1
    # every committed entry records its worker count
    assert all(
        e["params"].get("workers", 0) >= 1 for e in payload["benchmarks"]
    )


def test_check_against_reference_logic():
    """Unit-level regression-guard check (no bench run): floors compare
    against fresh speedups, ceilings against fresh single-lane seconds,
    and missing lanes fail."""
    bench = _load_bench_module()
    reference = {
        "benchmarks": [
            {"name": "a", "speedup": 4.0, "floor": 2.0},
            {"name": "b", "speedup": 3.0, "floor": 1.5},
            {"name": "c", "speedup": 9.9},  # no floor: never enforced
            {"name": "w", "seconds": 5.0, "max_seconds": 60.0},
        ]
    }
    ok = {
        "benchmarks": [
            {"name": "a", "speedup": 2.5},
            {"name": "b", "speedup": 1.6},
            {"name": "w", "seconds": 30.0},
        ]
    }
    assert bench.check_against_reference(ok, reference) == []
    slow = {
        "benchmarks": [
            {"name": "a", "speedup": 1.9},
            {"name": "b", "speedup": 1.6},
            {"name": "w", "seconds": 30.0},
        ]
    }
    failures = bench.check_against_reference(slow, reference)
    assert len(failures) == 1 and "a" in failures[0]
    missing = {
        "benchmarks": [{"name": "a", "speedup": 2.5}, {"name": "w", "seconds": 1.0}]
    }
    failures = bench.check_against_reference(missing, reference)
    assert len(failures) == 1 and "b" in failures[0]
    too_slow = {
        "benchmarks": [
            {"name": "a", "speedup": 2.5},
            {"name": "b", "speedup": 1.6},
            {"name": "w", "seconds": 61.0},
        ]
    }
    failures = bench.check_against_reference(too_slow, reference)
    assert len(failures) == 1 and "w" in failures[0]
    no_wide = {
        "benchmarks": [{"name": "a", "speedup": 2.5}, {"name": "b", "speedup": 1.6}]
    }
    failures = bench.check_against_reference(no_wide, reference)
    assert len(failures) == 1 and "w" in failures[0]
