"""Smoke test for the perf harness: ``scripts/bench.py --quick`` must run
inside the tier-1 time budget and emit a schema-valid
``BENCH_simulator.json``.

Schema ``repro.bench.simulator/v3`` has two entry shapes: paired lanes
(``baseline_seconds`` / ``fast_seconds`` / ``speedup``) for benchmarks
with a before/after comparison, and single-lane entries (``seconds``)
for the stabilizer scaling runs at widths no dense engine can
represent.  v3 adds the ``hybrid_segment_ghz_t`` lane (segment-granular
tableau→dense execution vs the fast dense engine).
"""

import json
import os
import pathlib
import subprocess
import sys

REPO = pathlib.Path(__file__).resolve().parents[1]

PAIRED_ENTRY_KEYS = {
    "name",
    "params",
    "baseline_seconds",
    "fast_seconds",
    "speedup",
}

SINGLE_LANE_KEYS = {"name", "params", "seconds"}


def test_bench_quick_emits_valid_schema(tmp_path):
    out = tmp_path / "BENCH_simulator.json"
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src") + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, str(REPO / "scripts" / "bench.py"), "--quick", "--out", str(out)],
        capture_output=True,
        text=True,
        env=env,
        timeout=300,
    )
    assert proc.returncode == 0, proc.stderr
    payload = json.loads(out.read_text())
    assert payload["schema"] == "repro.bench.simulator/v3"
    assert payload["quick"] is True
    assert isinstance(payload["config"], dict)
    names = set()
    for entry in payload["benchmarks"]:
        if "seconds" in entry:
            assert SINGLE_LANE_KEYS <= set(entry), entry
            assert entry["seconds"] > 0
        else:
            assert PAIRED_ENTRY_KEYS <= set(entry), entry
            assert entry["baseline_seconds"] > 0
            assert entry["fast_seconds"] > 0
            assert entry["speedup"] == entry["baseline_seconds"] / entry["fast_seconds"]
        names.add(entry["name"])
    # the acceptance-gate benchmarks and the workload lenses must exist
    assert "ghz_shot_sampling_grouped" in names
    assert "grouped_vs_per_shot" in names
    assert "vqe_iteration_sampled" in names
    assert "ghz_sampling_stabilizer" in names
    assert "stabilizer_scaling_ghz" in names
    assert "hybrid_segment_ghz_t" in names
