"""Smoke test for the perf harness: ``scripts/bench.py --quick --check``
must run inside the tier-1 time budget, emit a schema-valid
``BENCH_simulator.json``, and hold every speedup floor recorded in the
committed reference artifact.

Schema ``repro.bench.simulator/v4`` has two entry shapes: paired lanes
(``baseline_seconds`` / ``fast_seconds`` / ``speedup``, optionally a
``floor``) for benchmarks with a before/after comparison, and
single-lane entries (``seconds``) for the stabilizer scaling runs at
widths no dense engine can represent.  v4 adds the
``stabilizer_packed_ghz`` lane (bit-packed word-parallel tableau vs the
uint8 tableau), the ``diagonal_fusion_dense`` lane (diagonal-run kernel
fusion off vs on), 256/512/1024-qubit ``stabilizer_scaling_ghz`` lanes,
and per-lane speedup ``floor`` fields enforced by ``--check`` — the
bench regression guard this suite keeps wired into tier-1.
"""

import importlib.util
import json
import os
import pathlib
import subprocess
import sys

REPO = pathlib.Path(__file__).resolve().parents[1]

PAIRED_ENTRY_KEYS = {
    "name",
    "params",
    "baseline_seconds",
    "fast_seconds",
    "speedup",
}

SINGLE_LANE_KEYS = {"name", "params", "seconds"}


def _load_bench_module():
    spec = importlib.util.spec_from_file_location(
        "bench_under_test", REPO / "scripts" / "bench.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_bench_quick_check_emits_valid_schema_and_holds_floors(tmp_path):
    """One quick run doubles as schema validation and regression guard:
    ``--check`` exits nonzero if any lane drops below its committed
    floor, which would fail this tier-1 test."""
    out = tmp_path / "BENCH_simulator.json"
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src") + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [
            sys.executable,
            str(REPO / "scripts" / "bench.py"),
            "--quick",
            "--check",
            "--out",
            str(out),
        ],
        capture_output=True,
        text=True,
        env=env,
        timeout=300,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "--check passed" in proc.stdout
    payload = json.loads(out.read_text())
    assert payload["schema"] == "repro.bench.simulator/v4"
    assert payload["quick"] is True
    assert isinstance(payload["config"], dict)
    names = set()
    for entry in payload["benchmarks"]:
        if "seconds" in entry:
            assert SINGLE_LANE_KEYS <= set(entry), entry
            assert entry["seconds"] > 0
        else:
            assert PAIRED_ENTRY_KEYS <= set(entry), entry
            assert entry["baseline_seconds"] > 0
            assert entry["fast_seconds"] > 0
            assert entry["speedup"] == entry["baseline_seconds"] / entry["fast_seconds"]
            if "floor" in entry:
                assert entry["floor"] > 0
        names.add(entry["name"])
    # the acceptance-gate benchmarks and the workload lenses must exist
    assert "ghz_shot_sampling_grouped" in names
    assert "grouped_vs_per_shot" in names
    assert "vqe_iteration_sampled" in names
    assert "ghz_sampling_stabilizer" in names
    assert "stabilizer_scaling_ghz" in names
    assert "hybrid_segment_ghz_t" in names
    assert "stabilizer_packed_ghz" in names
    assert "diagonal_fusion_dense" in names


def test_committed_artifact_is_v4_with_floors_and_wide_scaling():
    """The committed reference must carry the v4 surface --check relies
    on: floors on the acceptance lanes and the 256/512/1024-qubit
    packed scaling lanes."""
    payload = json.loads((REPO / "BENCH_simulator.json").read_text())
    assert payload["schema"] == "repro.bench.simulator/v4"
    floors = {e["name"] for e in payload["benchmarks"] if "floor" in e}
    assert "stabilizer_packed_ghz" in floors
    assert "diagonal_fusion_dense" in floors
    assert "ghz_shot_sampling_grouped" in floors
    scaling_sizes = {
        e["params"]["num_qubits"]
        for e in payload["benchmarks"]
        if e["name"] == "stabilizer_scaling_ghz"
    }
    assert {256, 512, 1024} <= scaling_sizes
    packed = [
        e for e in payload["benchmarks"] if e["name"] == "stabilizer_packed_ghz"
    ]
    assert packed and packed[0]["params"]["num_qubits"] == 100
    # the packed-tableau acceptance gate: ≥5× over the uint8 tableau
    assert packed[0]["speedup"] >= 5.0


def test_check_against_reference_logic():
    """Unit-level regression-guard check (no bench run): floors compare
    against fresh speedups, missing lanes fail."""
    bench = _load_bench_module()
    reference = {
        "benchmarks": [
            {"name": "a", "speedup": 4.0, "floor": 2.0},
            {"name": "b", "speedup": 3.0, "floor": 1.5},
            {"name": "c", "speedup": 9.9},  # no floor: never enforced
        ]
    }
    ok = {"benchmarks": [{"name": "a", "speedup": 2.5}, {"name": "b", "speedup": 1.6}]}
    assert bench.check_against_reference(ok, reference) == []
    slow = {"benchmarks": [{"name": "a", "speedup": 1.9}, {"name": "b", "speedup": 1.6}]}
    failures = bench.check_against_reference(slow, reference)
    assert len(failures) == 1 and "a" in failures[0]
    missing = {"benchmarks": [{"name": "a", "speedup": 2.5}]}
    failures = bench.check_against_reference(missing, reference)
    assert len(failures) == 1 and "b" in failures[0]
