"""Cross-engine parity helpers shared by the sampler/batched/fuzz suites.

The repeated pattern across those suites: build a standard noisy
workload, sample it under several ``engine_mode`` settings with the same
seed, and assert the seeded counts are **bit-identical** — not merely
statistically close.  One copy of that machinery lives here so every
suite pins the same contract with the same words.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Sequence

from repro.circuits import QuantumCircuit, ghz_circuit
from repro.simulator import (
    Counts,
    NoiseModel,
    depolarizing_error,
    engine_mode,
    sample_counts,
)

#: The engine matrix every differential pin sweeps by default.  The
#: packed tableau is exercised separately (``tableau_impl="packed"``)
#: because it is a sub-option of ``stabilizer``, not a mode of its own.
ALL_ENGINE_MODES = ("fast", "batched", "stabilizer", "hybrid", "mps")


def light_noise() -> NoiseModel:
    """Mild depolarizing noise: a handful of realization groups."""
    nm = NoiseModel()
    nm.add_gate_error(depolarizing_error(0.02, 2), "cx")
    nm.add_gate_error(depolarizing_error(0.01, 1), "h")
    return nm


def heavy_noise() -> NoiseModel:
    """High rates force many multi-error realizations — the regime
    where grouped walks share leading injections and batched rows take
    later injections mid-walk."""
    nm = NoiseModel()
    nm.add_gate_error(depolarizing_error(0.15, 2), "cx")
    nm.add_gate_error(depolarizing_error(0.10, 1), "h")
    nm.add_gate_error(depolarizing_error(0.08, 1), "t")
    return nm


def ghz_t(n: int) -> QuantumCircuit:
    """GHZ preparation plus a T layer: Clifford prefix, diagonal tail —
    exercises fusion windows, the hybrid boundary, and heavy-noise
    grouping all at once."""
    qc = ghz_circuit(n, measure=False)
    for q in range(n):
        qc.t(q)
    qc.measure_all()
    return qc


def counts_under_mode(
    qc: QuantumCircuit,
    mode: str,
    seed,
    noise: Optional[NoiseModel] = None,
    shots: int = 512,
    **mode_options,
) -> Counts:
    """Sample *qc* under ``engine_mode(mode, **mode_options)``."""
    with engine_mode(mode, **mode_options):
        return sample_counts(qc, shots, noise=noise, rng=seed)


def assert_counts_identical(a: Counts, b: Counts, context=None) -> None:
    """The bit-identical pin: seeded counts must match exactly."""
    da, db = a.to_dict(), b.to_dict()
    assert da == db, f"seeded counts diverged ({context}): {da} vs {db}"


def engine_matrix_counts(
    qc: QuantumCircuit,
    seed,
    modes: Sequence[str] = ALL_ENGINE_MODES,
    noise: Optional[NoiseModel] = None,
    shots: int = 512,
) -> Dict[str, Counts]:
    """Run *qc* under every mode in *modes* with the same seed."""
    return {
        mode: counts_under_mode(qc, mode, seed, noise=noise, shots=shots)
        for mode in modes
    }


def assert_engine_matrix_identical(
    qc: QuantumCircuit,
    seeds: Iterable,
    modes: Sequence[str] = ALL_ENGINE_MODES,
    noise: Optional[NoiseModel] = None,
    shots: int = 512,
) -> None:
    """Assert every engine in *modes* produces identical seeded counts
    on *qc*, for each seed (the first listed mode is the reference)."""
    for seed in seeds:
        results = engine_matrix_counts(qc, seed, modes, noise=noise, shots=shots)
        ref_mode = modes[0]
        for mode in modes[1:]:
            assert_counts_identical(
                results[ref_mode], results[mode], context=(ref_mode, mode, seed)
            )


__all__ = [
    "ALL_ENGINE_MODES",
    "assert_counts_identical",
    "assert_engine_matrix_identical",
    "counts_under_mode",
    "engine_matrix_counts",
    "ghz_t",
    "heavy_noise",
    "light_noise",
]
