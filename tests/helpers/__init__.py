"""Shared test helpers (imported as ``helpers.*`` from the suite)."""
