"""Compiled execution plans and the cross-request plan cache.

Three contracts under test:

* the **structural hash** keys plans by circuit *shape* — gate names,
  wiring, parameter slots, per-gate diagonality — and never by numeric
  parameter values, so rebinding an ansatz hits the cache;
* the **cache** is a bounded LRU keyed by ``(structural_hash,
  options_key)``: collisions are impossible by construction, eviction
  respects the cap, and engine sub-options that change plan artifacts
  (``chi``, fusion toggles) key distinct entries;
* the **plan artifacts** each backend declares are the ones it actually
  consumes, and every planned result is bit-identical to the unplanned
  path (the fuzz suite extends this pin; here we test the memo layers
  directly).
"""

import numpy as np
import pytest

from helpers.parity import counts_under_mode, ghz_t
from repro.circuits import QuantumCircuit, ghz_circuit
from repro.circuits.parameters import Parameter, parameter_slots
from repro.circuits.serialize import structural_hash
from repro.compiler import plans
from repro.compiler.jit import JITCompiler
from repro.compiler.lowering import circuit_to_qir
from repro.qpu import Topology
from repro.simulator import engine_mode
from repro.simulator.engines import dense as dense_mod
from repro.simulator.engines import (
    BatchedDenseEngine,
    DenseEngine,
    HybridSegmentEngine,
    MPSEngine,
    TableauEngine,
)


@pytest.fixture(autouse=True)
def _fresh_cache():
    plans.plan_cache_clear()
    yield
    plans.plan_cache_clear()


def _ansatz(theta_values=None, wire=0):
    qc = QuantumCircuit(2, 2)
    qc.h(0)
    qc.cx(0, 1)
    if theta_values is None:
        theta = Parameter("theta")
        qc.rz(theta, wire)
    else:
        for v in theta_values:
            qc.rz(v, wire)
    qc.measure(0, 0)
    qc.measure(1, 1)
    return qc


class TestStructuralHash:
    def test_deterministic_across_rebuilds(self):
        assert structural_hash(ghz_t(5)) == structural_hash(ghz_t(5))

    def test_numeric_values_masked(self):
        a = _ansatz(theta_values=[0.5])
        b = _ansatz(theta_values=[0.7])
        assert structural_hash(a) == structural_hash(b)

    def test_gate_name_changes_hash(self):
        a = QuantumCircuit(1)
        a.s(0)
        b = QuantumCircuit(1)
        b.t(0)
        assert structural_hash(a) != structural_hash(b)

    def test_wiring_changes_hash(self):
        a = _ansatz(theta_values=[0.5], wire=0)
        b = _ansatz(theta_values=[0.5], wire=1)
        assert structural_hash(a) != structural_hash(b)

    def test_extra_gate_changes_hash(self):
        a = _ansatz(theta_values=[0.5])
        b = _ansatz(theta_values=[0.5, 0.5])
        assert structural_hash(a) != structural_hash(b)

    def test_clbit_wiring_changes_hash(self):
        a = QuantumCircuit(2, 2)
        a.h(0)
        a.measure(0, 0)
        b = QuantumCircuit(2, 2)
        b.h(0)
        b.measure(0, 1)
        assert structural_hash(a) != structural_hash(b)

    def test_register_shape_changes_hash(self):
        a = QuantumCircuit(2)
        a.h(0)
        b = QuantumCircuit(3)
        b.h(0)
        assert structural_hash(a) != structural_hash(b)

    def test_parameter_slot_sharing_distinguishes_reuse(self):
        """rz(θ),rz(θ) and rz(θ1),rz(θ2) are different *structures*:
        the first binds one value, the second two."""
        shared = QuantumCircuit(1)
        theta = Parameter("theta")
        shared.rz(theta, 0)
        shared.rz(theta, 0)
        distinct = QuantumCircuit(1)
        distinct.rz(Parameter("a"), 0)
        distinct.rz(Parameter("b"), 0)
        assert structural_hash(shared) != structural_hash(distinct)

    def test_fresh_parameter_objects_hash_identically(self):
        """Slot ids come from first-appearance order, not object
        identity — rebuilding an ansatz with new Parameter objects (the
        cross-request case) must hit the same hash."""
        a = _ansatz()
        b = _ansatz()
        assert a.parameters[0] is not b.parameters[0]
        assert structural_hash(a) == structural_hash(b)

    def test_diagonality_edge_values_key_separately(self):
        """ry(0) is diagonal where ry(0.3) is not; the per-gate
        diagonality bit keeps "same hash ⇒ same fusion partition"
        sound, at the cost of separate cache entries for such edges."""
        a = QuantumCircuit(1)
        a.ry(0.0, 0)
        b = QuantumCircuit(1)
        b.ry(0.3, 0)
        assert structural_hash(a) != structural_hash(b)

    def test_parameter_slots_first_appearance_order(self):
        x, y = Parameter("x"), Parameter("y")
        qc = QuantumCircuit(1)
        qc.rz(y, 0)
        qc.rz(x, 0)
        slots = parameter_slots(inst.params for inst in qc)
        assert slots == {y: 0, x: 1}


class TestPlanCache:
    def test_identical_structure_hits(self):
        p1 = plans.plan_for(ghz_t(4))
        p2 = plans.plan_for(ghz_t(4))
        assert p1 is p2
        info = plans.plan_cache_info()
        assert info["hits"] >= 1 and info["entries"] == 1

    def test_rebound_ansatz_hits(self):
        qc = _ansatz()
        p1 = plans.plan_for(qc.bind_values([0.4]))
        p2 = plans.plan_for(qc.bind_values([1.9]))
        assert p1 is p2

    def test_lru_eviction_under_small_cap(self, monkeypatch):
        monkeypatch.setattr(plans, "PLAN_CACHE_MAX", 2)
        circuits = [ghz_circuit(n, measure=False) for n in (2, 3, 4)]
        for qc in circuits:
            plans.plan_for(qc)
        info = plans.plan_cache_info()
        assert info["entries"] == 2
        # oldest (ghz-2) evicted; re-planning it is a miss...
        misses = info["misses"]
        plans.plan_for(circuits[0])
        assert plans.plan_cache_info()["misses"] == misses + 1
        # ...while ghz-4 (most recent of the survivors) still hits
        hits = plans.plan_cache_info()["hits"]
        plans.plan_for(circuits[2])
        assert plans.plan_cache_info()["hits"] == hits + 1

    def test_lru_order_refreshed_on_hit(self, monkeypatch):
        monkeypatch.setattr(plans, "PLAN_CACHE_MAX", 2)
        a, b, c = (ghz_circuit(n, measure=False) for n in (2, 3, 4))
        plans.plan_for(a)
        plans.plan_for(b)
        plans.plan_for(a)  # refresh a: b is now the eviction candidate
        plans.plan_for(c)
        keys = plans.plan_cache_keys()
        assert len(keys) == 2
        assert keys[0][0] == structural_hash(a)
        assert keys[1][0] == structural_hash(c)

    def test_mps_chi_options_key_separate_entries(self):
        qc = ghz_t(4)
        p_default = plans.plan_for(qc)
        with engine_mode("mps", chi=2):
            p_chi = plans.plan_for(qc)
        assert p_chi is not p_default
        # restoring the mode restores the original cache entry
        assert plans.plan_for(qc) is p_default

    def test_fusion_toggle_options_key_separate_entries(self, monkeypatch):
        qc = ghz_t(4)
        p_fused = plans.plan_for(qc)
        monkeypatch.setattr(dense_mod, "FUSE_BLOCKS", False)
        p_unfused = plans.plan_for(qc)
        assert p_unfused is not p_fused

    def test_clear_resets_entries_and_counters(self):
        plans.plan_for(ghz_t(3))
        plans.plan_cache_clear()
        assert plans.plan_cache_info() == {
            "entries": 0,
            "max_entries": plans.PLAN_CACHE_MAX,
            "hits": 0,
            "misses": 0,
            "evictions": 0,
        }

    def test_eviction_counter_counts_lru_drops(self, monkeypatch):
        plans.plan_cache_clear()
        monkeypatch.setattr(plans, "PLAN_CACHE_MAX", 2)
        for n in (3, 4, 5, 6):
            plans.plan_for(ghz_t(n))
        info = plans.plan_cache_info()
        assert info["entries"] == 2
        assert info["misses"] == 4
        assert info["evictions"] == 2


class TestPlanArtifacts:
    def test_per_engine_declarations(self):
        assert DenseEngine.plan_artifacts == (
            "window_partitions",
            "diagonal_tables",
            "block_matrices",
            "block_schedules",
        )
        assert BatchedDenseEngine.plan_artifacts == DenseEngine.plan_artifacts
        assert TableauEngine.plan_artifacts == ()
        assert HybridSegmentEngine.plan_artifacts == ("clifford_boundary",)
        assert MPSEngine.plan_artifacts == ("swap_routes",)

    def test_window_items_match_unplanned_partition(self):
        qc = ghz_t(6)
        ops = list(qc)
        bound = plans.plan_for(qc).bind(tuple(ops))
        n = len(ops)
        unplanned = dense_mod.plan_diagonal_fusion(ops[:n])
        planned = bound.window_items(0, n)
        assert (planned is None) == (unplanned is None)
        if planned is not None:
            assert len(planned) == len(unplanned)
            for a, b in zip(planned, unplanned):
                if isinstance(a, tuple) and isinstance(b, tuple):
                    np.testing.assert_array_equal(a[0], b[0])
                    assert a[1] == b[1]
                else:
                    assert a is b  # raw Instruction passthrough

    def test_static_items_cached_across_bindings(self):
        """Zero-param fused tables are computed once per plan and
        shared across bindings; parameterized windows are not."""
        qc = ghz_circuit(4, measure=False)
        qc.t(0)
        qc.t(1)
        qc.t(2)
        qc.measure_all()
        ops = tuple(qc)
        plan = plans.plan_for(qc)
        b1 = plan.bind(ops)
        b2 = plan.bind(ops)
        i1 = b1.window_items(0, len(ops))
        i2 = b2.window_items(0, len(ops))
        fused_pairs = [
            (a, b)
            for a, b in zip(i1, i2)
            if isinstance(a, tuple) and isinstance(b, tuple)
        ]
        assert fused_pairs, "workload produced no fused items"
        for a, b in fused_pairs:
            assert a[0] is b[0], "static fused table rebuilt per binding"

    def test_clifford_boundary_matches_classifier(self):
        qc = ghz_t(5)
        ops = tuple(qc)
        bound = plans.plan_for(qc).bind(ops)
        from repro.circuits.dag import instruction_is_clifford

        expected = len(ops)
        for i, inst in enumerate(ops):
            if not instruction_is_clifford(inst):
                expected = i
                break
        assert bound.clifford_boundary == expected

    def test_swap_routes_match_line_topology(self):
        qc = QuantumCircuit(6, 6)
        qc.h(0)
        qc.cx(0, 4)
        qc.cx(2, 3)  # adjacent: no route needed
        qc.cx(5, 1)
        qc.measure_all()
        routes = plans.plan_for(qc).swap_routes
        topo = Topology.line(6)
        assert routes[(0, 4)] == tuple(topo.shortest_path(0, 4))
        assert routes[(1, 5)] == tuple(topo.shortest_path(1, 5))
        assert (2, 3) not in routes

    def test_fused_block_equals_gate_product(self):
        """The ≤2-qubit block matrix equals applying the member gates
        one by one to every basis state."""
        qc = QuantumCircuit(2)
        qc.h(0)
        qc.x(1)
        qc.cx(0, 1)
        qc.h(1)
        ops = list(qc)
        matrix, qubits = dense_mod._fused_block(ops)
        assert qubits == [0, 1]
        from repro.simulator import StateVector

        for basis in range(4):
            sv = StateVector(2)
            sv._data[:] = 0
            sv._data[basis] = 1.0
            for inst in ops:
                sv.apply_matrix(inst.matrix(), inst.qubits)
            np.testing.assert_allclose(sv.data, matrix[:, basis], atol=1e-12)


class TestPlannedExecutionParity:
    """Direct planned-vs-unplanned pins (the fuzz suite broadens these
    over random circuits)."""

    @pytest.mark.parametrize("mode", ["fast", "batched", "hybrid", "mps"])
    def test_grouped_walk_counts_identical(self, mode):
        from helpers.parity import heavy_noise

        qc = ghz_t(6)
        planned = counts_under_mode(qc, mode, 7, noise=heavy_noise())
        plans.PLANS_ENABLED = False
        try:
            unplanned = counts_under_mode(qc, mode, 7, noise=heavy_noise())
        finally:
            plans.PLANS_ENABLED = True
        assert planned.to_dict() == unplanned.to_dict()

    def test_per_shot_walk_counts_identical(self):
        qc = QuantumCircuit(2, 2)
        qc.h(0)
        qc.measure(0, 0)
        qc.x(1)
        qc.cx(0, 1)
        qc.measure(1, 1)
        planned = counts_under_mode(qc, "fast", 3, shots=256)
        plans.PLANS_ENABLED = False
        try:
            unplanned = counts_under_mode(qc, "fast", 3, shots=256)
        finally:
            plans.PLANS_ENABLED = True
        assert planned.to_dict() == unplanned.to_dict()

    def test_baseline_mode_never_plans(self):
        before = plans.plan_cache_info()["misses"]
        counts_under_mode(ghz_circuit(3), "baseline", 1, shots=32)
        assert plans.plan_cache_info()["misses"] == before


class TestCompilerIntegration:
    def test_jit_execution_plan_returns_cached_plan(self):
        from repro.qdmi import QPUQDMIDevice
        from repro.qpu import QPUDevice

        qc = ghz_t(4)
        jit = JITCompiler(QPUQDMIDevice(QPUDevice(seed=1)))
        p1 = jit.execution_plan(qc)
        p2 = jit.execution_plan(circuit_to_qir(qc))
        assert p1 is plans.plan_for(qc)
        assert p2 is p1

    def test_structural_fingerprint_masks_values_not_wiring(self):
        a = circuit_to_qir(_ansatz(theta_values=[0.5]))
        b = circuit_to_qir(_ansatz(theta_values=[0.7]))
        c = circuit_to_qir(_ansatz(theta_values=[0.5], wire=1))
        assert a.structural_fingerprint() == b.structural_fingerprint()
        assert a.structural_fingerprint() != c.structural_fingerprint()
        assert a.fingerprint() != b.fingerprint()  # values still count here
