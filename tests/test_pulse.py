"""Tests for the pulse-level access layer."""

import math

import pytest

from repro.errors import DeviceError
from repro.qpu import QPUDevice
from repro.qpu.params import NOMINAL
from repro.qpu.pulse import (
    AcquirePulse,
    DrivePulse,
    FluxPulse,
    PulseSchedule,
    circuit_to_schedule,
    schedule_to_circuit,
)
from repro.transpiler import transpile


class TestScheduleConstruction:
    def test_append_packs_channels(self):
        s = PulseSchedule()
        s.append(DrivePulse(0, 20e-9, 1.0))
        s.append(DrivePulse(0, 20e-9, 0.5))
        s.append(DrivePulse(1, 20e-9, 1.0))  # different channel: parallel
        times = [t.time for t in s.ops]
        assert times == [0.0, 0.0, 20e-9] or times == [0.0, 20e-9, 0.0]
        assert s.duration == pytest.approx(40e-9)

    def test_overlap_on_same_channel_rejected(self):
        s = PulseSchedule()
        s.insert(0.0, DrivePulse(0, 20e-9, 1.0))
        with pytest.raises(DeviceError):
            s.insert(10e-9, DrivePulse(0, 20e-9, 1.0))

    def test_flux_occupies_both_drive_channels(self):
        s = PulseSchedule()
        s.insert(0.0, FluxPulse((0, 1), 40e-9))
        with pytest.raises(DeviceError):
            s.insert(20e-9, DrivePulse(1, 20e-9, 1.0))

    def test_negative_time_rejected(self):
        with pytest.raises(DeviceError):
            PulseSchedule().insert(-1.0, DrivePulse(0, 20e-9, 1.0))

    def test_rotation_angle_scales_with_area(self):
        full_pi = DrivePulse(0, NOMINAL["prx_duration"], 1.0)
        assert full_pi.rotation_angle() == pytest.approx(math.pi)
        half = DrivePulse(0, NOMINAL["prx_duration"], 0.5)
        assert half.rotation_angle() == pytest.approx(math.pi / 2)
        long = DrivePulse(0, 2 * NOMINAL["prx_duration"], 0.5)
        assert long.rotation_angle() == pytest.approx(math.pi)

    def test_draw_mentions_ops(self):
        s = PulseSchedule("demo")
        s.append(DrivePulse(0, 20e-9, 1.0))
        s.append(AcquirePulse(0, 1.5e-6))
        art = s.draw()
        assert "drive" in art and "acquire" in art


class TestScheduleToCircuit:
    def test_pi_pulse_flips_qubit(self):
        device = QPUDevice(seed=1)
        s = PulseSchedule("flip")
        s.append(DrivePulse(0, NOMINAL["prx_duration"], 1.0))
        s.append(AcquirePulse(0, NOMINAL["readout_duration"]))
        circuit = schedule_to_circuit(s, 1)
        result = device.execute(circuit, shots=2000)
        assert result.counts.probabilities().get("1", 0) > 0.9

    def test_hand_built_bell_pair(self):
        """A pulse-level Bell sequence: π/2 drives + flux CZ + drive."""
        device = QPUDevice(seed=2)
        s = PulseSchedule("bell")
        d = NOMINAL["prx_duration"]
        # H ≈ PRX(π/2, π/2) then virtual Z — at pulse level use the
        # textbook Ry(π/2) preparation on both qubits + CZ + Ry(-π/2) on
        # the target: |Φ+⟩ in Z basis statistics.
        s.append(DrivePulse(0, d, 0.5, phase=math.pi / 2))
        s.append(DrivePulse(1, d, 0.5, phase=math.pi / 2))
        s.append(FluxPulse((0, 1), NOMINAL["cz_duration"]))
        s.append(DrivePulse(1, d, -0.5, phase=math.pi / 2))
        s.append(AcquirePulse(0, NOMINAL["readout_duration"]))
        s.append(AcquirePulse(1, NOMINAL["readout_duration"]))
        circuit = schedule_to_circuit(s, 2)
        result = device.execute(circuit, shots=3000)
        probs = result.counts.probabilities()
        correlated = probs.get("00", 0) + probs.get("11", 0)
        assert correlated > 0.85

    def test_gap_becomes_delay(self):
        s = PulseSchedule()
        s.insert(0.0, DrivePulse(0, 20e-9, 1.0))
        s.insert(100e-9, DrivePulse(0, 20e-9, 1.0))
        circuit = schedule_to_circuit(s, 1)
        delays = [i for i in circuit if i.name == "delay"]
        assert len(delays) == 1
        assert delays[0].params[0] == pytest.approx(80e-9)

    def test_out_of_range_qubit_rejected(self):
        s = PulseSchedule()
        s.append(DrivePulse(5, 20e-9, 1.0))
        with pytest.raises(DeviceError):
            schedule_to_circuit(s, 2)

    def test_zero_amplitude_emits_no_gate(self):
        s = PulseSchedule()
        s.append(DrivePulse(0, 20e-9, 0.0))
        circuit = schedule_to_circuit(s, 1)
        assert circuit.count_ops().get("prx", 0) == 0


class TestCircuitToSchedule:
    def test_roundtrip_semantics(self, device):
        """circuit → schedule → circuit keeps the measured distribution."""
        from repro.circuits import ghz_circuit
        from repro.simulator import ideal_probabilities

        snap = device.calibration()
        native = transpile(ghz_circuit(3), device.topology, snapshot=snap).circuit
        schedule = circuit_to_schedule(native, snap)
        lowered = schedule_to_circuit(
            schedule, device.topology.num_qubits, native.num_clbits
        )
        p1 = ideal_probabilities(native)
        p2 = ideal_probabilities(lowered)
        for key in set(p1) | set(p2):
            assert p1.get(key, 0) == pytest.approx(p2.get(key, 0), abs=1e-6)

    def test_non_native_rejected(self, device, snapshot):
        from repro.circuits import ghz_circuit

        with pytest.raises(DeviceError):
            circuit_to_schedule(ghz_circuit(2), snapshot)

    def test_virtual_rz_emits_no_pulse(self, device, snapshot):
        from repro.circuits import QuantumCircuit

        qc = QuantumCircuit(1)
        qc.rz(0.5, 0)
        qc.prx(0.3, 0.1, 0)
        schedule = circuit_to_schedule(qc, snapshot)
        assert len(schedule) == 1  # only the PRX pulse

    def test_schedule_duration_matches_device_estimate(self, device):
        from repro.circuits import ghz_circuit

        snap = device.calibration()
        native = transpile(ghz_circuit(4), device.topology, snapshot=snap).circuit
        schedule = circuit_to_schedule(native, snap)
        est, _ = device.estimate_durations(native, snap)
        assert schedule.duration == pytest.approx(est, rel=1e-6)
