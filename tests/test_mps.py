"""Matrix-product-state engine: state algebra, parity, and wide scaling.

Four layers of guarantees are pinned here:

1. **State algebra** — :class:`MPSState` gate application (1q, adjacent
   2q, SWAP-routed non-adjacent 2q), canonical-center sweeps, collapse/
   measure/reset, and Pauli expectations all agree with the dense
   engine at 1e-10 fidelity.
2. **Seeded parity** — with an unconstrained ``chi``, seeded counts
   from :class:`MPSEngine` are *identical* to :class:`DenseEngine` on
   ≤12-qubit Clifford+T suites, through the grouped path, the per-shot
   (mid-circuit measurement/reset) path, Pauli and reset-type (thermal)
   noise injection, and readout noise.
3. **Truncation contract** — the ``chi`` cap really bounds every bond,
   truncation loss accumulates in ``truncation_error`` while the state
   stays normalized, and the ``engine_mode`` sub-options scope the
   process-global knobs (validated before any global mutates).
4. **Wide scaling** — the flagship capability: a 64-qubit shallow
   brickwork circuit (branching tail, infeasible on every other
   non-Clifford path) samples 512 shots in seconds with zero truncation
   error at the default ``chi``, and the ``"auto"`` router sends such
   circuits to the MPS engine on its own.
"""

import math
import time

import numpy as np
import pytest

from repro.circuits import (
    QuantumCircuit,
    brickwork_circuit,
    ghz_circuit,
    random_circuit,
)
from repro.errors import EngineModeError, SimulationError
from repro.hybrid import (
    exact_expectation,
    expectation_mps,
    expectation_statevector,
    transverse_field_ising,
)
from repro.simulator import (
    DenseEngine,
    MPSEngine,
    MPSState,
    NoiseModel,
    depolarizing_error,
    engine_mode,
    engine_registry,
    prepare_engine,
    sample_counts,
    select_engine,
    simulate_mps,
    simulate_statevector,
)
from repro.simulator.engines import mps as mps_mod
from repro.simulator.noise import ReadoutError, thermal_relaxation_error
from repro.simulator.statevector import DENSE_QUBIT_LIMIT

from test_stabilizer import random_clifford_circuit


def ghz_t_circuit(num_qubits, *, measure=True):
    """GHZ Clifford prefix + T layer."""
    qc = ghz_circuit(num_qubits, measure=False, name=f"ghz{num_qubits}+t")
    for q in range(num_qubits):
        qc.t(q)
    if measure:
        qc.measure_all()
    return qc


def clifford_t_circuit(num_qubits, depth, rng, *, measure=True):
    """Random Clifford prefix + interleaved non-Clifford tail (shared
    shape with the hybrid suite)."""
    qc = random_clifford_circuit(num_qubits, depth, rng)
    qc.t(int(rng.integers(num_qubits)))
    for _ in range(depth // 2):
        roll = rng.random()
        q = int(rng.integers(num_qubits))
        if roll < 0.3:
            qc.t(q)
        elif roll < 0.5:
            qc.rz(float(rng.uniform(-math.pi, math.pi)), q)
        elif roll < 0.7 and num_qubits >= 2:
            q2 = int(rng.integers(num_qubits - 1))
            q2 += q2 >= q
            qc.cx(q, q2)
        else:
            qc.h(q)
    if measure:
        qc.measure_all()
    return qc


def _noise(with_readout=False, thermal=False):
    nm = NoiseModel()
    nm.add_gate_error(depolarizing_error(0.01, 2), "cx")
    if thermal:
        nm.add_gate_error(thermal_relaxation_error(30e-6, 20e-6, 5e-6), "h")
    else:
        nm.add_gate_error(depolarizing_error(0.005, 1), "h")
    if with_readout:
        nm.add_readout_error(ReadoutError(0.02, 0.03), 0)
        nm.add_readout_error(ReadoutError(0.01, 0.04), 1)
    return nm


# ---------------------------------------------------------------------------
# state algebra vs the dense engine
# ---------------------------------------------------------------------------


class TestMPSStateAlgebra:
    def test_initial_state_is_all_zeros(self):
        state = MPSState(5)
        sv = state.to_statevector()
        assert sv.data[0] == 1.0
        assert np.abs(sv.data[1:]).max() == 0.0
        assert state.bond_dimensions() == (1, 1, 1, 1)

    def test_random_circuits_match_dense(self):
        rng = np.random.default_rng(91)
        for trial in range(20):
            n = int(rng.integers(2, 9))
            qc = random_circuit(n, 35, seed=int(rng.integers(1 << 30)), measure=False)
            got = simulate_mps(qc).to_statevector()
            want = simulate_statevector(qc)
            assert got.fidelity(want) > 1 - 1e-10, trial
            assert abs(got.norm() - 1.0) < 1e-10

    def test_non_adjacent_gates_swap_routed(self):
        qc = QuantumCircuit(7)
        qc.h(0)
        qc.cx(0, 6)
        qc.cx(5, 1)
        qc.rzz(0.7, 0, 3)
        qc.append("iswap", [2, 6])
        qc.swap(6, 0)
        qc.cp(0.31, 4, 0)
        want = simulate_statevector(qc)
        got = simulate_mps(qc).to_statevector()
        assert got.fidelity(want) > 1 - 1e-10

    def test_canonical_sweeps_preserve_state(self):
        state = simulate_mps(random_circuit(6, 30, seed=3, measure=False))
        before = state.to_statevector().data.copy()
        for target in (0, 5, 2, 4, 0):
            state.canonicalize_to(target)
            assert state.center == target
        drift = np.abs(state.to_statevector().data - before).max()
        assert drift < 1e-12

    def test_ghz_bond_dimension_is_two(self):
        state = simulate_mps(ghz_circuit(12, measure=False))
        assert state.bond_dimensions() == (2,) * 11
        assert state.truncation_error == 0.0

    def test_measure_collapse_reset(self):
        rng = np.random.default_rng(92)
        state = simulate_mps(ghz_circuit(5, measure=False))
        outcome = state.measure(0, rng)
        for q in range(1, 5):
            assert state.marginal_probability_one(q) == pytest.approx(float(outcome))
        state.reset(2, rng)
        assert state.marginal_probability_one(2) == pytest.approx(0.0)
        with pytest.raises(SimulationError):
            state.collapse(2, 1)

    def test_sample_matches_dense_bits_exactly(self):
        rng = np.random.default_rng(93)
        for trial in range(8):
            n = int(rng.integers(2, 8))
            qc = random_circuit(n, 25, seed=int(rng.integers(1 << 30)), measure=False)
            seed = int(rng.integers(1 << 30))
            got = simulate_mps(qc).sample(150, np.random.default_rng(seed))
            want = simulate_statevector(qc).sample(150, np.random.default_rng(seed))
            assert np.array_equal(got, want), trial

    def test_expectation_pauli_matches_dense(self):
        rng = np.random.default_rng(94)
        for trial in range(10):
            n = int(rng.integers(2, 7))
            qc = random_circuit(n, 25, seed=int(rng.integers(1 << 30)), measure=False)
            state = simulate_mps(qc)
            dense = simulate_statevector(qc)
            pauli = "".join(rng.choice(list("IXYZ"), size=n))
            got = state.expectation_pauli(pauli, range(n))
            want = dense.expectation_pauli(pauli, range(n))
            assert abs(got - want) < 1e-9, (trial, pauli)

    def test_rejects_bad_operands(self):
        state = MPSState(3)
        with pytest.raises(SimulationError):
            state.apply_matrix(np.eye(2), [7])
        with pytest.raises(SimulationError):
            state.apply_matrix(np.eye(4), [1, 1])
        with pytest.raises(SimulationError):
            state.apply_matrix(np.eye(8), [0, 1, 2])

    def test_wide_to_statevector_fails_fast(self):
        with pytest.raises(SimulationError, match="dense engine caps"):
            MPSState(DENSE_QUBIT_LIMIT + 4).to_statevector()


# ---------------------------------------------------------------------------
# truncation contract
# ---------------------------------------------------------------------------


class TestTruncation:
    def test_chi_caps_every_bond(self):
        qc = random_circuit(10, 120, seed=5, measure=False)
        state = simulate_mps(qc, chi=4)
        assert state.max_bond_dimension <= 4
        assert state.truncation_error > 0.0
        assert abs(state.norm() - 1.0) < 1e-10

    def test_unconstrained_chi_is_exact(self):
        qc = random_circuit(8, 60, seed=6, measure=False)
        state = simulate_mps(qc, chi=16)  # 2^(8//2) = widest exact cut
        assert state.truncation_error == 0.0
        assert state.to_statevector().fidelity(simulate_statevector(qc)) > 1 - 1e-10

    def test_truncation_threshold_trades_fidelity_for_bond(self):
        qc = random_circuit(10, 80, seed=7, measure=False)
        exact = simulate_mps(qc)
        loose = simulate_mps(qc, truncation_threshold=1e-4)
        assert loose.max_bond_dimension <= exact.max_bond_dimension
        assert loose.truncation_error < 1e-1
        # still a high-fidelity state
        f = loose.to_statevector().fidelity(simulate_statevector(qc))
        assert f > 0.99

    def test_fork_carries_truncation_state(self):
        qc = brickwork_circuit(8, 6, measure=False)
        with engine_mode("mps", chi=3):
            engine = prepare_engine(qc, "mps")
        dup = engine.fork()
        assert dup.truncation_error == engine.truncation_error
        assert dup.max_bond_dimension == engine.max_bond_dimension
        assert dup._state.tensors[0] is not engine._state.tensors[0]

    def test_invalid_construction_rejected(self):
        with pytest.raises(SimulationError):
            MPSState(4, chi=0)
        with pytest.raises(SimulationError):
            MPSState(4, chi=True)  # bool is an int subclass, still wrong
        with pytest.raises(SimulationError):
            MPSState(4, truncation_threshold=1.5)
        # numpy integers from sweep/config code are valid
        assert MPSState(4, chi=np.int64(8)).chi == 8

    def test_sampling_truncated_state_warns_once(self):
        """Sampling a state whose truncation loss exceeds the budget
        must warn — silently-approximate counts are the failure mode of
        auto-routing to a lossy backend."""
        qc = random_circuit(8, 80, seed=13, measure=False)
        state = simulate_mps(qc, chi=2)
        assert state.truncation_error > 1e-6
        with pytest.warns(UserWarning, match="truncated MPS"):
            state.sample(16, np.random.default_rng(0))
        import warnings as warnings_mod

        with warnings_mod.catch_warnings():
            warnings_mod.simplefilter("error")
            state.sample(16, np.random.default_rng(0))  # warned once already

    def test_untruncated_sampling_does_not_warn(self):
        import warnings as warnings_mod

        state = simulate_mps(ghz_circuit(10, measure=False))
        with warnings_mod.catch_warnings():
            warnings_mod.simplefilter("error")
            state.sample(16, np.random.default_rng(0))


# ---------------------------------------------------------------------------
# seeded parity with the dense engine (the acceptance criterion)
# ---------------------------------------------------------------------------


class TestSeededParity:
    def test_ghz_t_grouped_counts_exact(self):
        for n in (2, 6, 12):
            qc = ghz_t_circuit(n)
            for seed in (0, 7):
                with engine_mode("fast"):
                    dense = sample_counts(qc, 384, noise=_noise(True), rng=seed)
                with engine_mode("mps"):
                    mps = sample_counts(qc, 384, noise=_noise(True), rng=seed)
                assert dense.to_dict() == mps.to_dict(), (n, seed)

    def test_random_clifford_t_counts_exact(self):
        rng = np.random.default_rng(95)
        for trial in range(8):
            n = int(rng.integers(2, 9))
            qc = clifford_t_circuit(n, 20, rng)
            seed = int(rng.integers(1 << 30))
            with engine_mode("fast"):
                dense = sample_counts(qc, 256, noise=_noise(), rng=seed)
            with engine_mode("mps"):
                mps = sample_counts(qc, 256, noise=_noise(), rng=seed)
            assert dense.to_dict() == mps.to_dict(), trial

    def test_brickwork_counts_exact(self):
        qc = brickwork_circuit(10, 4, seed=2)
        for seed in (1, 9):
            with engine_mode("fast"):
                dense = sample_counts(qc, 320, noise=_noise(), rng=seed)
            with engine_mode("mps"):
                mps = sample_counts(qc, 320, noise=_noise(), rng=seed)
            assert dense.to_dict() == mps.to_dict(), seed

    def test_reset_type_noise_counts_exact(self):
        qc = ghz_t_circuit(8)
        for seed in (1, 5, 9):
            with engine_mode("fast"):
                dense = sample_counts(qc, 320, noise=_noise(thermal=True), rng=seed)
            with engine_mode("mps"):
                mps = sample_counts(qc, 320, noise=_noise(thermal=True), rng=seed)
            assert dense.to_dict() == mps.to_dict(), seed

    def test_mid_circuit_measurement_counts_exact(self):
        qc = QuantumCircuit(3)
        qc.h(0)
        qc.cx(0, 1)
        qc.measure(0)
        qc.t(1)
        qc.reset(2)
        qc.h(2)
        qc.cx(1, 2)
        qc.t(2)
        qc.measure_all()
        nm = NoiseModel()
        nm.add_gate_error(depolarizing_error(0.05, 1), "h")
        for seed in (0, 42):
            with engine_mode("fast"):
                dense = sample_counts(qc, 256, noise=nm, rng=seed)
            with engine_mode("mps"):
                mps = sample_counts(qc, 256, noise=nm, rng=seed)
            assert dense.to_dict() == mps.to_dict(), seed

    def test_state_fidelity_via_engine(self):
        rng = np.random.default_rng(96)
        for trial in range(6):
            n = int(rng.integers(2, 10))
            qc = clifford_t_circuit(n, 18, rng, measure=False)
            engine = prepare_engine(qc, "mps")
            want = simulate_statevector(qc)
            assert engine.to_dense().fidelity(want) > 1 - 1e-10, trial


# ---------------------------------------------------------------------------
# expectations
# ---------------------------------------------------------------------------


class TestMPSExpectation:
    def test_expectation_mps_matches_statevector(self):
        rng = np.random.default_rng(97)
        ham = transverse_field_ising(6, j=1.1, h=0.6)
        for _ in range(5):
            qc = clifford_t_circuit(6, 15, rng, measure=False)
            engine = prepare_engine(qc, "mps")
            got = engine.expectation(ham)
            want = expectation_statevector(ham, simulate_statevector(qc))
            assert abs(got - want) < 1e-9

    def test_exact_expectation_honours_mps_mode(self):
        ham = transverse_field_ising(8, j=0.8, h=1.3)
        qc = brickwork_circuit(8, 3, measure=False)
        with engine_mode("mps"):
            got = exact_expectation(ham, qc)
        want = expectation_statevector(ham, simulate_statevector(qc))
        assert abs(got - want) < 1e-9

    def test_wide_expectation_beyond_dense_limit(self):
        n = DENSE_QUBIT_LIMIT + 14
        ham = transverse_field_ising(n)
        state = simulate_mps(ghz_circuit(n, measure=False))
        value = expectation_mps(ham, state)
        # GHZ: ⟨Z_i Z_{i+1}⟩ = 1, ⟨X_i⟩ = 0
        assert abs(value - (-1.0 * (n - 1))) < 1e-9


# ---------------------------------------------------------------------------
# routing and facade
# ---------------------------------------------------------------------------


class TestRoutingAndFacade:
    def test_mps_engine_registered(self):
        assert engine_registry()["mps"] is MPSEngine

    def test_mps_mode_routes_everything_to_mps(self):
        assert select_engine("mps", ghz_circuit(4)) is MPSEngine
        assert select_engine("mps", brickwork_circuit(40, 4)) is MPSEngine

    def test_auto_routes_wide_line_circuit_to_mps(self):
        wide = brickwork_circuit(DENSE_QUBIT_LIMIT + 14, 4)
        assert select_engine("auto", wide) is MPSEngine
        # dense widths stay on the exact engines
        assert select_engine("auto", brickwork_circuit(10, 4)) is DenseEngine

    def test_chi_sub_option_scopes_global(self):
        assert mps_mod.CHI == 64
        with engine_mode("mps", chi=7, truncation_threshold=1e-6):
            assert mps_mod.CHI == 7
            assert mps_mod.TRUNCATION_THRESHOLD == 1e-6
            engine = MPSEngine(ghz_circuit(4, measure=False))
            assert engine.chi == 7
        assert mps_mod.CHI == 64
        assert mps_mod.TRUNCATION_THRESHOLD == 0.0
        # numpy integers (sweep/config code) are valid sub-option values
        with engine_mode("mps", chi=np.int64(16)):
            assert mps_mod.CHI == 16

    def test_chi_only_valid_for_mps_capable_modes(self):
        for mode in ("fast", "baseline", "stabilizer", "hybrid"):
            with pytest.raises(EngineModeError):
                with engine_mode(mode, chi=8):
                    pass  # pragma: no cover
        for mode in ("mps", "auto"):
            with engine_mode(mode, chi=8):
                assert mps_mod.CHI == 8

    def test_invalid_sub_option_values_rejected_before_mutation(self):
        before = (mps_mod.CHI, mps_mod.TRUNCATION_THRESHOLD)
        for kwargs in (
            {"chi": 0},
            {"chi": 2.5},
            {"chi": True},
            {"truncation_threshold": -0.1},
            {"truncation_threshold": 1.0},
        ):
            with pytest.raises(EngineModeError):
                with engine_mode("mps", **kwargs):
                    pass  # pragma: no cover
        assert (mps_mod.CHI, mps_mod.TRUNCATION_THRESHOLD) == before


# ---------------------------------------------------------------------------
# wide scaling: the flagship capability
# ---------------------------------------------------------------------------


class TestWideScaling:
    def test_64q_brickwork_samples_in_seconds(self):
        """A 64-qubit shallow brickwork circuit — branching tail, so
        infeasible on dense, hybrid, and tableau alike — samples 512
        shots in seconds on the MPS engine with zero truncation error
        at the default chi."""
        n = 64
        qc = brickwork_circuit(n, 4, seed=1)
        with engine_mode("fast"):
            with pytest.raises(SimulationError):
                sample_counts(qc, 16, rng=0)
        start = time.perf_counter()
        with engine_mode("mps"):
            counts = sample_counts(qc, 512, noise=_noise(), rng=7)
        elapsed = time.perf_counter() - start
        assert counts.shots == 512
        assert counts.num_bits == n
        assert elapsed < 30.0, f"64q brickwork sampling took {elapsed:.1f}s"
        engine = prepare_engine(qc, "mps")
        assert engine.truncation_error == 0.0
        assert engine.max_bond_dimension <= mps_mod.CHI

    def test_wide_ghz_sweep_sampling_is_coherent(self):
        """Beyond the dense limit the conditional-marginal sweep takes
        over; GHZ correlations survive it (every row is constant)."""
        n = DENSE_QUBIT_LIMIT + 14
        state = simulate_mps(ghz_circuit(n, measure=False))
        bits = state.sample(256, np.random.default_rng(3))
        totals = bits.sum(axis=1)
        assert bool(np.all((totals == 0) | (totals == n)))
        # both branches appear with roughly equal weight
        frac = float((totals == n).mean())
        assert 0.35 < frac < 0.65

    def test_wide_qaoa_chain_via_auto(self):
        """A 40-qubit QAOA-style chain (RZZ cost + RX mixer: branching
        tail, line-like) routes to MPS under "auto" and samples."""
        n = 40
        qc = QuantumCircuit(n, name="qaoa40")
        for q in range(n):
            qc.h(q)
        for p, (gamma, beta) in enumerate([(0.4, 0.9), (0.7, 0.3)]):
            for q in range(n - 1):
                qc.rzz(gamma, q, q + 1)
            for q in range(n):
                qc.rx(beta, q)
        qc.measure_all()
        assert select_engine("auto", qc) is MPSEngine
        with engine_mode("auto"):
            counts = sample_counts(qc, 128, rng=11)
        assert counts.shots == 128
        assert counts.num_bits == n
