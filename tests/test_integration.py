"""End-to-end integration tests crossing all stack layers."""

import numpy as np
import pytest

from repro.calibration import CalibrationController, ghz_benchmark
from repro.circuits import ghz_circuit
from repro.compiler import JITCompiler
from repro.facility import (
    FacilityConfig,
    OutageScenario,
    OutageType,
    simulate_outage,
)
from repro.hybrid import VQE, h2_hamiltonian
from repro.middleware import MQSSClient, RestServer
from repro.middleware.adapters import make_kernel
from repro.qdmi import QPUQDMIDevice, QDMIProperty
from repro.qpu import DeviceStatus, QPUDevice
from repro.scheduler import (
    ClusterScheduler,
    Job,
    JobState,
    Partition,
    QuantumResourceManager,
    Simulation,
)
from repro.telemetry import DCDBCollector, MetricStore, QPUMetricsPlugin
from repro.utils.units import DAY, HOUR, MINUTE


class TestFullStackExecution:
    """Adapter → client → QRM → JIT → transpiler → device → counts."""

    def test_cudaq_to_counts_via_hpc_path(self):
        device = QPUDevice(seed=100)
        client = MQSSClient(QuantumResourceManager(device), context="hpc")
        kernel, q = make_kernel(4, "ghz4")
        kernel.h(q[0])
        for i in range(3):
            kernel.cx(q[i], q[i + 1])
        kernel.mz()
        counts = client.run(kernel.module, shots=1200)
        assert counts.ghz_fidelity_estimate() > 0.7

    def test_rest_path_full_serialization(self):
        device = QPUDevice(seed=101)
        qrm = QuantumResourceManager(device)
        client = MQSSClient(qrm, context="remote")
        counts = client.run(ghz_circuit(3), shots=600)
        assert counts.shots == 600
        assert counts.most_frequent() in ("000", "111")

    def test_quantum_job_inside_cluster(self):
        """The QPU as a partition of the classical cluster."""
        sim = Simulation()
        cluster = ClusterScheduler(
            sim, [Partition("compute", 8), Partition("quantum", 1)]
        )
        device = QPUDevice(seed=102)
        qrm = QuantumResourceManager(device, cluster=cluster)

        def quantum_executor(job: Job) -> float:
            # the cluster owns the job's state machine; the executor only
            # performs the physical run and reports the true duration
            artifact = qrm.jit.compile(job.payload["program"])
            result = device.execute(artifact.circuit, shots=job.payload["shots"])
            job.result = result
            return result.duration

        cluster.executors["quantum"] = quantum_executor
        qjob = Job(
            name="ghz",
            partition="quantum",
            runtime=10.0,
            walltime_limit=600.0,
            is_quantum=True,
            payload={"program": ghz_circuit(3), "shots": 256},
        )
        cluster.submit(qjob)
        cluster.submit(Job(name="classical", num_nodes=4, runtime=100, walltime_limit=200))
        sim.run_until(2000)
        assert qjob.state is JobState.COMPLETED
        assert qjob.result.counts.shots == 256


class TestTelemetryDrivenCompilation:
    def test_jit_placement_reacts_to_degradation(self):
        """Degrade a region; the JIT avoids it after telemetry updates."""
        device = QPUDevice(seed=103)
        jit = JITCompiler(QPUQDMIDevice(device))
        before = jit.compile(ghz_circuit(4))
        # age the device hard so some couplers degrade
        device.advance_time(20 * DAY)
        after = jit.compile(ghz_circuit(4))
        assert not after.from_cache
        assert after.calibration_timestamp > before.calibration_timestamp

    def test_monitoring_to_calibration_loop(self):
        """Drift → telemetry → advisor → controller → restored fidelity."""
        device = QPUDevice(seed=104)
        store = MetricStore()
        collector = DCDBCollector(store, [QPUMetricsPlugin(device, per_qubit=False)])
        controller = CalibrationController(device)
        calibrated = 0
        for _ in range(10 * 6):
            device.advance_time(4 * HOUR)
            collector.run_cycle(device.time)
            if controller.step(store):
                calibrated += 1
        assert calibrated >= 2
        assert device.calibration().median_cz_fidelity() > 0.975


class TestOutageToScheduler:
    def test_outage_requeues_and_recovers(self):
        """Cooling fault → device offline → jobs requeue → recovery →
        forced full calibration → jobs complete (Section 3.5 end-to-end)."""
        device = QPUDevice(seed=105)
        qrm = QuantumResourceManager(device)
        controller = CalibrationController(device)
        for _ in range(3):
            qrm.submit(ghz_circuit(3), shots=64)
        qrm.run_next()  # one job done pre-outage
        # outage strikes
        report = simulate_outage(
            OutageScenario(OutageType.COOLING_WATER_OVERTEMP, 45 * MINUTE),
            FacilityConfig(redundant_cooling=False),
        )
        device.set_status(DeviceStatus.OFFLINE)
        assert qrm.run_next().state is JobState.PENDING  # requeued, not lost
        # recovery completes: device cold again, full calibration required
        device.advance_time(report.total_downtime)
        device.set_status(DeviceStatus.ONLINE)
        if not report.calibration_survived:
            controller.force("full", "post-outage recovery")
        assert qrm.drain() == 2
        assert qrm.stats.jobs_completed == 3


class TestHybridOnFullStack:
    def test_vqe_through_client(self):
        """The tightly-coupled loop of Section 2.6 on the noisy device."""
        device = QPUDevice(seed=106)
        client = MQSSClient(QuantumResourceManager(device), context="hpc")
        ham = h2_hamiltonian()
        vqe = VQE(
            ham,
            lambda qc, shots: client.run(qc, shots=shots),
            shots=300,
            depth=2,
        )
        result = vqe.minimize(optimizer="spsa", iterations=25, rng=6)
        # noisy hardware: demand qualitative convergence, not chemistry
        assert result.energy < -1.0
        assert vqe.energy_evaluations > 25


class TestHealthCheckConsistency:
    def test_benchmark_score_tracks_calibration_quality(self):
        device = QPUDevice(seed=107)
        fresh = ghz_benchmark(device, 5, shots=800).score
        device.advance_time(12 * DAY)
        aged = ghz_benchmark(device, 5, shots=800).score
        device.calibrate("full")
        restored = ghz_benchmark(device, 5, shots=800).score
        assert aged < fresh
        assert restored > aged

    def test_rest_device_info_matches_qdmi(self):
        device = QPUDevice(seed=108)
        qrm = QuantumResourceManager(device)
        server = RestServer(qrm)
        info = server.get_device().body
        with QPUQDMIDevice(device).open_session() as session:
            assert info["num_qubits"] == session.query(QDMIProperty.NUM_QUBITS)
            assert info["median_cz_fidelity"] == pytest.approx(
                session.query(QDMIProperty.MEDIAN_CZ_FIDELITY), abs=1e-6
            )
