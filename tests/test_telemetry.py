"""Tests for the DCDB-style telemetry store, plugins, and analytics."""

import numpy as np
import pytest

from repro.errors import SensorError, TelemetryError
from repro.qpu import QPUDevice
from repro.telemetry import (
    CallbackPlugin,
    DCDBCollector,
    JobAccountingPlugin,
    MetricStore,
    QPUMetricsPlugin,
    RecalibrationAdvisor,
    detect_anomalies,
    qubit_health,
    trend,
)
from repro.utils.units import DAY, HOUR


class TestMetricStore:
    def test_insert_and_latest(self):
        s = MetricStore()
        s.insert("a.b", 1.0, 10.0)
        s.insert("a.b", 2.0, 20.0)
        point = s.latest("a.b")
        assert point.timestamp == 2.0 and point.value == 20.0

    def test_out_of_order_rejected(self):
        s = MetricStore()
        s.insert("x", 5.0, 1.0)
        with pytest.raises(TelemetryError):
            s.insert("x", 4.0, 1.0)

    def test_empty_sensor_name_rejected(self):
        with pytest.raises(TelemetryError):
            MetricStore().insert("", 0.0, 1.0)

    def test_unknown_sensor_raises(self):
        with pytest.raises(TelemetryError):
            MetricStore().latest("missing")

    def test_prefix_filter(self):
        s = MetricStore()
        s.insert("qpu.t1", 0.0, 1.0)
        s.insert("facility.temp", 0.0, 2.0)
        assert s.sensors("qpu") == ["qpu.t1"]

    def test_range_query(self):
        s = MetricStore()
        for t in range(10):
            s.insert("x", float(t), float(t * t))
        ts, vs = s.query("x", 3.0, 6.0)
        assert list(ts) == [3.0, 4.0, 5.0, 6.0]
        assert list(vs) == [9.0, 16.0, 25.0, 36.0]

    def test_growth_beyond_chunk(self):
        s = MetricStore()
        n = 10_000
        for t in range(n):
            s.insert("big", float(t), 1.0)
        assert s.num_points("big") == n

    def test_insert_many(self):
        s = MetricStore()
        s.insert_many(1.0, {"a": 1.0, "b": 2.0})
        assert len(s) == 2

    def test_record_plan_cache_snapshots_counters(self):
        from repro.circuits import ghz_circuit
        from repro.compiler import plans

        plans.plan_cache_clear()
        s = MetricStore()
        s.record_plan_cache(0.0)
        plans.plan_for(ghz_circuit(4))  # miss
        plans.plan_for(ghz_circuit(4))  # hit
        s.record_plan_cache(1.0)
        family = s.sensors("simulator.plan_cache")
        assert family == [
            "simulator.plan_cache.entries",
            "simulator.plan_cache.evictions",
            "simulator.plan_cache.hits",
            "simulator.plan_cache.misses",
        ]
        assert s.latest("simulator.plan_cache.hits").value == 1.0
        assert s.latest("simulator.plan_cache.misses").value == 1.0
        assert s.latest("simulator.plan_cache.entries").value == 1.0
        assert s.latest("simulator.plan_cache.evictions").value == 0.0
        # two collection cycles landed on the shared timeline
        ts, vs = s.query("simulator.plan_cache.misses")
        assert list(ts) == [0.0, 1.0] and list(vs) == [0.0, 1.0]

    def test_aggregate_mean(self):
        s = MetricStore()
        for t in range(100):
            s.insert("x", float(t), float(t))
        centers, values = s.aggregate("x", 0.0, 100.0, 10.0)
        assert len(values) == 10
        assert values[0] == pytest.approx(4.5)

    def test_aggregate_empty_window_nan(self):
        s = MetricStore()
        s.insert("x", 0.0, 1.0)
        _, values = s.aggregate("x", 0.0, 30.0, 10.0)
        assert np.isnan(values[1]) and np.isnan(values[2])

    def test_aggregate_modes(self):
        s = MetricStore()
        for t, v in ((0.0, 1.0), (1.0, 5.0), (2.0, 3.0)):
            s.insert("x", t, v)
        for how, expected in (("min", 1.0), ("max", 5.0), ("last", 3.0)):
            _, vals = s.aggregate("x", 0.0, 10.0, 10.0, how=how)
            assert vals[0] == expected

    def test_aggregate_bad_mode(self):
        s = MetricStore()
        s.insert("x", 0.0, 1.0)
        with pytest.raises(TelemetryError):
            s.aggregate("x", 0.0, 1.0, 1.0, how="median!")

    def test_correlate_perfect(self):
        s = MetricStore()
        for t in range(50):
            s.insert("a", float(t), float(t))
            s.insert("b", float(t), 2.0 * t + 1.0)
        assert s.correlate("a", "b", 0.0, 50.0, 5.0) == pytest.approx(1.0)

    def test_correlate_needs_overlap(self):
        s = MetricStore()
        s.insert("a", 0.0, 1.0)
        s.insert("b", 0.0, 1.0)
        with pytest.raises(TelemetryError):
            s.correlate("a", "b", 0.0, 1.0, 1.0)

    @pytest.mark.parametrize("how", ["mean", "min", "max", "last"])
    def test_aggregate_matches_scalar_reference(self, how):
        """The vectorized reduceat windowing must agree with the obvious
        per-window loop on irregular data — including empty windows,
        single-point windows, and the end-of-range clamp."""
        rng = np.random.default_rng(42)
        times = np.sort(rng.uniform(0.0, 100.0, size=137))
        values = rng.normal(0.0, 5.0, size=times.size)
        s = MetricStore()
        for t, v in zip(times, values):
            s.insert("x", float(t), float(v))
        window = 7.0
        centers, got = s.aggregate("x", 0.0, 100.0, window, how=how)
        n_windows = int(np.ceil(100.0 / window))
        assert centers.size == got.size == n_windows
        reducer = {"mean": np.mean, "min": np.min, "max": np.max}.get(how)
        for i in range(n_windows):
            lo, hi = i * window, (i + 1) * window
            mask = (times >= lo) & (times < hi)
            if i == n_windows - 1:  # the last window absorbs t == end
                mask = (times >= lo) & (times <= 100.0)
            if not mask.any():
                assert np.isnan(got[i])
            elif reducer is None:
                assert got[i] == values[mask][-1]
            else:
                assert got[i] == pytest.approx(reducer(values[mask]))

    def test_aggregate_point_at_range_end_clamps_into_last_window(self):
        s = MetricStore()
        s.insert("x", 10.0, 7.0)
        _, values = s.aggregate("x", 0.0, 10.0, 2.5)
        assert values[-1] == 7.0 and np.isnan(values[:-1]).all()

    def test_record_execution_lands_exec_sensor_family(self):
        from repro.telemetry.tracing import ExecutionReport

        s = MetricStore()
        report = ExecutionReport(
            engine="dense",
            mode="fast",
            num_qubits=5,
            shots=256,
            wall_seconds=0.125,
            phase_seconds={"sampler.grouped": 0.1, "engine.prepare": 0.01},
            span_counts={"sampler.grouped": 1},
            counters={"plan_cache.hits": 1, "sampler.trajectory_groups": 9},
            estimated_peak_bytes=1536,
            plan_cache_hits=1,
        )
        s.record_execution(report, 10.0)
        family = s.sensors("simulator.exec")
        assert "simulator.exec.wall_seconds" in family
        assert "simulator.exec.phase.sampler.grouped" in family
        assert "simulator.exec.events.plan_cache.hits" in family
        assert s.latest("simulator.exec.wall_seconds").value == 0.125
        assert s.latest("simulator.exec.shots").value == 256.0
        assert s.latest("simulator.exec.plan_cache_hit").value == 1.0
        assert s.latest("simulator.exec.estimated_peak_bytes").value == 1536.0
        assert s.latest("simulator.exec.phase.engine.prepare").value == 0.01
        assert (
            s.latest("simulator.exec.events.sampler.trajectory_groups").value
            == 9.0
        )
        # MPS-only fields were None: no empty sensors materialized
        assert "simulator.exec.max_bond_dimension" not in family
        assert "simulator.exec.truncation_error" not in family

    def test_record_execution_accepts_report_dicts(self):
        """The REST layer stores reports as payload dicts; recording one
        must behave exactly like recording the dataclass."""
        from repro.telemetry.tracing import ExecutionReport

        report = ExecutionReport(
            engine="mps",
            mode="mps",
            num_qubits=6,
            shots=64,
            wall_seconds=0.5,
            max_bond_dimension=4,
            truncation_error=0.0,
        )
        s = MetricStore()
        s.record_execution(report.to_dict(), 1.0)
        assert s.latest("simulator.exec.max_bond_dimension").value == 4.0
        assert s.latest("simulator.exec.truncation_error").value == 0.0

    def test_record_execution_timeseries_queryable(self):
        """Recorded runs land on the shared timeline: aggregate and
        correlate work over the simulator.exec.* family like any other
        sensor."""
        from repro.telemetry.tracing import ExecutionReport

        s = MetricStore()
        for i in range(12):
            s.record_execution(
                ExecutionReport(
                    engine="dense",
                    mode="fast",
                    num_qubits=5,
                    shots=100 + 10 * i,
                    wall_seconds=0.01 * (100 + 10 * i),
                ),
                float(i),
            )
        _, means = s.aggregate("simulator.exec.shots", 0.0, 12.0, 6.0)
        assert means[0] == pytest.approx(125.0)
        assert means[1] == pytest.approx(185.0)
        corr = s.correlate(
            "simulator.exec.shots", "simulator.exec.wall_seconds", 0.0, 12.0, 2.0
        )
        assert corr == pytest.approx(1.0)


class TestCollector:
    def test_cycle_lands_points(self, device):
        store = MetricStore()
        collector = DCDBCollector(store, [QPUMetricsPlugin(device)])
        landed = collector.run_cycle(0.0)
        assert landed > 100  # medians + 20 qubits × 4 + 31 couplers
        assert "qpu.median_cz_fidelity" in store

    def test_failing_plugin_skipped(self, device):
        def bad(_t):
            raise SensorError("broken sensor")

        store = MetricStore()
        collector = DCDBCollector(
            store,
            [CallbackPlugin("bad", bad), JobAccountingPlugin(device)],
        )
        landed = collector.run_cycle(0.0)
        assert landed == 3  # accounting only

    def test_callback_plugin_validates_return(self):
        store = MetricStore()
        collector = DCDBCollector(store, [CallbackPlugin("x", lambda t: [1, 2])])
        with pytest.raises(SensorError):
            collector.plugins[0].collect(0.0)

    def test_cycles_counted(self, device):
        collector = DCDBCollector(MetricStore(), [JobAccountingPlugin(device)])
        collector.run_cycle(0.0)
        collector.run_cycle(60.0)
        assert collector.cycles_run == 2
        assert collector.last_cycle_at == 60.0

    def test_simulator_counters_plugin_snapshots_all_three_families(self):
        """One collector cycle lands plan-cache, resilience, and
        execution counters together — the DCDB 'continuous and holistic'
        contract applied to the simulation stack."""
        from repro.circuits import ghz_circuit
        from repro.compiler import plans
        from repro.simulator import engine_mode, resilience, sample_counts
        from repro.telemetry import SimulatorCountersPlugin, tracing

        plans.plan_cache_clear()
        resilience.reset_counters()
        tracing.reset_exec_counters()
        try:
            resilience.count_event("retries", 3)
            with engine_mode("fast", trace=True):
                sample_counts(ghz_circuit(4), 32, rng=7)
            store = MetricStore()
            collector = DCDBCollector(store, [SimulatorCountersPlugin()])
            landed = collector.run_cycle(5.0)
            assert landed >= 12
            assert store.latest("simulator.plan_cache.misses").value == 1.0
            assert store.latest("simulator.resilience.retries").value == 3.0
            assert store.latest("simulator.exec.runs").value == 1.0
            assert store.latest("simulator.exec.shots").value == 32.0
            assert store.latest("simulator.exec.wall_seconds").value > 0.0
        finally:
            resilience.reset_counters()
            tracing.reset_exec_counters()


class TestAnalytics:
    def test_trend_detects_slope(self):
        s = MetricStore()
        for t in range(20):
            s.insert("x", float(t), 3.0 * t + 1.0)
        slope, intercept = trend(s, "x", 0.0, 20.0)
        assert slope == pytest.approx(3.0)
        assert intercept == pytest.approx(1.0)

    def test_trend_needs_points(self):
        s = MetricStore()
        s.insert("x", 0.0, 1.0)
        with pytest.raises(TelemetryError):
            trend(s, "x", 0.0, 1.0)

    def test_anomaly_detection_step_change(self):
        s = MetricStore()
        rng = np.random.default_rng(0)
        for t in range(100):
            base = 10.0 if t < 70 else 4.0  # TLS-style T1 drop
            s.insert("t1", float(t), base + rng.normal(0, 0.05))
        anomalies = detect_anomalies(s, "t1", 0.0, 100.0)
        assert anomalies and min(anomalies) >= 70.0

    def test_no_anomalies_in_stationary_data(self):
        s = MetricStore()
        rng = np.random.default_rng(1)
        for t in range(100):
            s.insert("x", float(t), rng.normal(0, 1))
        assert detect_anomalies(s, "x", 0.0, 100.0, z_threshold=6.0) == []

    def test_trend_on_constant_series_is_flat(self):
        """Dead-flat data must fit slope ≈ 0 without numerical drama —
        the polyfit runs on zero-variance input."""
        s = MetricStore()
        for t in range(20):
            s.insert("x", float(t), 42.0)
        slope, intercept = trend(s, "x", 0.0, 20.0)
        assert slope == pytest.approx(0.0, abs=1e-9)
        assert intercept == pytest.approx(42.0)

    def test_anomalies_on_constant_series_empty(self):
        """A constant baseline has zero sigma; the epsilon floor must
        keep identical follow-on points from flagging as anomalous."""
        s = MetricStore()
        for t in range(50):
            s.insert("x", float(t), 7.0)
        assert detect_anomalies(s, "x", 0.0, 50.0) == []

    def test_constant_series_with_step_still_flags(self):
        """...but the floor must not deaden a genuine step on top of a
        zero-variance baseline."""
        s = MetricStore()
        for t in range(50):
            s.insert("x", float(t), 7.0 if t < 40 else 9.0)
        anomalies = detect_anomalies(s, "x", 0.0, 50.0)
        assert anomalies and min(anomalies) >= 40.0

    def test_anomalies_all_nan_window_returns_empty(self):
        """A sensor whose window is wall-to-wall NaN (a dead gauge) must
        yield no anomalies and no RuntimeWarning-driven surprises."""
        s = MetricStore()
        for t in range(20):
            s.insert("x", float(t), float("nan"))
        assert detect_anomalies(s, "x", 0.0, 20.0) == []

    def test_anomalies_nan_baseline_poisons_nothing(self):
        """NaNs confined to the baseline half must not flag the healthy
        tail: NaN z-scores compare False, never True."""
        s = MetricStore()
        for t in range(20):
            v = float("nan") if t < 10 else 5.0
            s.insert("x", float(t), v)
        assert detect_anomalies(s, "x", 0.0, 20.0) == []

    def test_qubit_health_flags_degraded(self, device):
        store = MetricStore()
        # inject a degraded qubit by hand-feeding per-qubit sensors
        for q in range(20):
            bad = q == 7
            store.insert(f"qpu.qubit{q:02d}.t1", 0.0, 10e-6 if bad else 40e-6)
            store.insert(f"qpu.qubit{q:02d}.prx_error", 0.0, 0.05 if bad else 1e-3)
            store.insert(f"qpu.qubit{q:02d}.readout_error", 0.0, 0.2 if bad else 0.025)
        health = qubit_health(store, 20)
        degraded = [h.qubit for h in health if h.cluster == "degraded"]
        assert degraded == [7]

    def test_qubit_health_requires_data(self):
        with pytest.raises(TelemetryError):
            qubit_health(MetricStore(), 20)


class TestRecalibrationAdvisor:
    def _store_with(self, prx, cz, ro, age=HOUR):
        s = MetricStore()
        s.insert("qpu.median_prx_fidelity", 0.0, prx)
        s.insert("qpu.median_cz_fidelity", 0.0, cz)
        s.insert("qpu.median_readout_fidelity", 0.0, ro)
        s.insert("qpu.calibration_age", 0.0, age)
        return s

    def test_all_good_none(self):
        advice = RecalibrationAdvisor().advise(self._store_with(0.999, 0.991, 0.975))
        assert advice.action == "none"

    def test_cz_drop_triggers_full(self):
        advice = RecalibrationAdvisor().advise(self._store_with(0.999, 0.975, 0.975))
        assert advice.action == "full"

    def test_readout_drop_triggers_quick(self):
        advice = RecalibrationAdvisor().advise(self._store_with(0.999, 0.991, 0.94))
        assert advice.action == "quick"

    def test_stale_calibration_triggers_full(self):
        advice = RecalibrationAdvisor().advise(
            self._store_with(0.999, 0.991, 0.975, age=5 * DAY)
        )
        assert advice.action == "full"

    def test_no_telemetry_bootstraps_full(self):
        advice = RecalibrationAdvisor().advise(MetricStore())
        assert advice.action == "full"


class TestResilienceCollector:
    def test_record_resilience_snapshots_counters(self):
        from repro.simulator import resilience

        resilience.reset_counters()
        try:
            s = MetricStore()
            s.record_resilience(0.0)
            resilience.count_event("retries", 2)
            resilience.count_event("pool_rebuilds")
            resilience.count_event("engine_fallbacks")
            s.record_resilience(1.0)
            family = s.sensors("simulator.resilience")
            assert family == [
                "simulator.resilience.admission_rejects",
                "simulator.resilience.engine_fallbacks",
                "simulator.resilience.inline_fallbacks",
                "simulator.resilience.pool_rebuilds",
                "simulator.resilience.retries",
            ]
            assert s.latest("simulator.resilience.retries").value == 2.0
            assert s.latest("simulator.resilience.pool_rebuilds").value == 1.0
            assert s.latest("simulator.resilience.admission_rejects").value == 0.0
            # two collection cycles landed on the shared timeline
            ts, vs = s.query("simulator.resilience.retries")
            assert list(ts) == [0.0, 1.0] and list(vs) == [0.0, 2.0]
        finally:
            resilience.reset_counters()
