"""Tests for the DCDB-style telemetry store, plugins, and analytics."""

import numpy as np
import pytest

from repro.errors import SensorError, TelemetryError
from repro.qpu import QPUDevice
from repro.telemetry import (
    CallbackPlugin,
    DCDBCollector,
    JobAccountingPlugin,
    MetricStore,
    QPUMetricsPlugin,
    RecalibrationAdvisor,
    detect_anomalies,
    qubit_health,
    trend,
)
from repro.utils.units import DAY, HOUR


class TestMetricStore:
    def test_insert_and_latest(self):
        s = MetricStore()
        s.insert("a.b", 1.0, 10.0)
        s.insert("a.b", 2.0, 20.0)
        point = s.latest("a.b")
        assert point.timestamp == 2.0 and point.value == 20.0

    def test_out_of_order_rejected(self):
        s = MetricStore()
        s.insert("x", 5.0, 1.0)
        with pytest.raises(TelemetryError):
            s.insert("x", 4.0, 1.0)

    def test_empty_sensor_name_rejected(self):
        with pytest.raises(TelemetryError):
            MetricStore().insert("", 0.0, 1.0)

    def test_unknown_sensor_raises(self):
        with pytest.raises(TelemetryError):
            MetricStore().latest("missing")

    def test_prefix_filter(self):
        s = MetricStore()
        s.insert("qpu.t1", 0.0, 1.0)
        s.insert("facility.temp", 0.0, 2.0)
        assert s.sensors("qpu") == ["qpu.t1"]

    def test_range_query(self):
        s = MetricStore()
        for t in range(10):
            s.insert("x", float(t), float(t * t))
        ts, vs = s.query("x", 3.0, 6.0)
        assert list(ts) == [3.0, 4.0, 5.0, 6.0]
        assert list(vs) == [9.0, 16.0, 25.0, 36.0]

    def test_growth_beyond_chunk(self):
        s = MetricStore()
        n = 10_000
        for t in range(n):
            s.insert("big", float(t), 1.0)
        assert s.num_points("big") == n

    def test_insert_many(self):
        s = MetricStore()
        s.insert_many(1.0, {"a": 1.0, "b": 2.0})
        assert len(s) == 2

    def test_record_plan_cache_snapshots_counters(self):
        from repro.circuits import ghz_circuit
        from repro.compiler import plans

        plans.plan_cache_clear()
        s = MetricStore()
        s.record_plan_cache(0.0)
        plans.plan_for(ghz_circuit(4))  # miss
        plans.plan_for(ghz_circuit(4))  # hit
        s.record_plan_cache(1.0)
        family = s.sensors("simulator.plan_cache")
        assert family == [
            "simulator.plan_cache.entries",
            "simulator.plan_cache.evictions",
            "simulator.plan_cache.hits",
            "simulator.plan_cache.misses",
        ]
        assert s.latest("simulator.plan_cache.hits").value == 1.0
        assert s.latest("simulator.plan_cache.misses").value == 1.0
        assert s.latest("simulator.plan_cache.entries").value == 1.0
        assert s.latest("simulator.plan_cache.evictions").value == 0.0
        # two collection cycles landed on the shared timeline
        ts, vs = s.query("simulator.plan_cache.misses")
        assert list(ts) == [0.0, 1.0] and list(vs) == [0.0, 1.0]

    def test_aggregate_mean(self):
        s = MetricStore()
        for t in range(100):
            s.insert("x", float(t), float(t))
        centers, values = s.aggregate("x", 0.0, 100.0, 10.0)
        assert len(values) == 10
        assert values[0] == pytest.approx(4.5)

    def test_aggregate_empty_window_nan(self):
        s = MetricStore()
        s.insert("x", 0.0, 1.0)
        _, values = s.aggregate("x", 0.0, 30.0, 10.0)
        assert np.isnan(values[1]) and np.isnan(values[2])

    def test_aggregate_modes(self):
        s = MetricStore()
        for t, v in ((0.0, 1.0), (1.0, 5.0), (2.0, 3.0)):
            s.insert("x", t, v)
        for how, expected in (("min", 1.0), ("max", 5.0), ("last", 3.0)):
            _, vals = s.aggregate("x", 0.0, 10.0, 10.0, how=how)
            assert vals[0] == expected

    def test_aggregate_bad_mode(self):
        s = MetricStore()
        s.insert("x", 0.0, 1.0)
        with pytest.raises(TelemetryError):
            s.aggregate("x", 0.0, 1.0, 1.0, how="median!")

    def test_correlate_perfect(self):
        s = MetricStore()
        for t in range(50):
            s.insert("a", float(t), float(t))
            s.insert("b", float(t), 2.0 * t + 1.0)
        assert s.correlate("a", "b", 0.0, 50.0, 5.0) == pytest.approx(1.0)

    def test_correlate_needs_overlap(self):
        s = MetricStore()
        s.insert("a", 0.0, 1.0)
        s.insert("b", 0.0, 1.0)
        with pytest.raises(TelemetryError):
            s.correlate("a", "b", 0.0, 1.0, 1.0)


class TestCollector:
    def test_cycle_lands_points(self, device):
        store = MetricStore()
        collector = DCDBCollector(store, [QPUMetricsPlugin(device)])
        landed = collector.run_cycle(0.0)
        assert landed > 100  # medians + 20 qubits × 4 + 31 couplers
        assert "qpu.median_cz_fidelity" in store

    def test_failing_plugin_skipped(self, device):
        def bad(_t):
            raise SensorError("broken sensor")

        store = MetricStore()
        collector = DCDBCollector(
            store,
            [CallbackPlugin("bad", bad), JobAccountingPlugin(device)],
        )
        landed = collector.run_cycle(0.0)
        assert landed == 3  # accounting only

    def test_callback_plugin_validates_return(self):
        store = MetricStore()
        collector = DCDBCollector(store, [CallbackPlugin("x", lambda t: [1, 2])])
        with pytest.raises(SensorError):
            collector.plugins[0].collect(0.0)

    def test_cycles_counted(self, device):
        collector = DCDBCollector(MetricStore(), [JobAccountingPlugin(device)])
        collector.run_cycle(0.0)
        collector.run_cycle(60.0)
        assert collector.cycles_run == 2
        assert collector.last_cycle_at == 60.0


class TestAnalytics:
    def test_trend_detects_slope(self):
        s = MetricStore()
        for t in range(20):
            s.insert("x", float(t), 3.0 * t + 1.0)
        slope, intercept = trend(s, "x", 0.0, 20.0)
        assert slope == pytest.approx(3.0)
        assert intercept == pytest.approx(1.0)

    def test_trend_needs_points(self):
        s = MetricStore()
        s.insert("x", 0.0, 1.0)
        with pytest.raises(TelemetryError):
            trend(s, "x", 0.0, 1.0)

    def test_anomaly_detection_step_change(self):
        s = MetricStore()
        rng = np.random.default_rng(0)
        for t in range(100):
            base = 10.0 if t < 70 else 4.0  # TLS-style T1 drop
            s.insert("t1", float(t), base + rng.normal(0, 0.05))
        anomalies = detect_anomalies(s, "t1", 0.0, 100.0)
        assert anomalies and min(anomalies) >= 70.0

    def test_no_anomalies_in_stationary_data(self):
        s = MetricStore()
        rng = np.random.default_rng(1)
        for t in range(100):
            s.insert("x", float(t), rng.normal(0, 1))
        assert detect_anomalies(s, "x", 0.0, 100.0, z_threshold=6.0) == []

    def test_qubit_health_flags_degraded(self, device):
        store = MetricStore()
        # inject a degraded qubit by hand-feeding per-qubit sensors
        for q in range(20):
            bad = q == 7
            store.insert(f"qpu.qubit{q:02d}.t1", 0.0, 10e-6 if bad else 40e-6)
            store.insert(f"qpu.qubit{q:02d}.prx_error", 0.0, 0.05 if bad else 1e-3)
            store.insert(f"qpu.qubit{q:02d}.readout_error", 0.0, 0.2 if bad else 0.025)
        health = qubit_health(store, 20)
        degraded = [h.qubit for h in health if h.cluster == "degraded"]
        assert degraded == [7]

    def test_qubit_health_requires_data(self):
        with pytest.raises(TelemetryError):
            qubit_health(MetricStore(), 20)


class TestRecalibrationAdvisor:
    def _store_with(self, prx, cz, ro, age=HOUR):
        s = MetricStore()
        s.insert("qpu.median_prx_fidelity", 0.0, prx)
        s.insert("qpu.median_cz_fidelity", 0.0, cz)
        s.insert("qpu.median_readout_fidelity", 0.0, ro)
        s.insert("qpu.calibration_age", 0.0, age)
        return s

    def test_all_good_none(self):
        advice = RecalibrationAdvisor().advise(self._store_with(0.999, 0.991, 0.975))
        assert advice.action == "none"

    def test_cz_drop_triggers_full(self):
        advice = RecalibrationAdvisor().advise(self._store_with(0.999, 0.975, 0.975))
        assert advice.action == "full"

    def test_readout_drop_triggers_quick(self):
        advice = RecalibrationAdvisor().advise(self._store_with(0.999, 0.991, 0.94))
        assert advice.action == "quick"

    def test_stale_calibration_triggers_full(self):
        advice = RecalibrationAdvisor().advise(
            self._store_with(0.999, 0.991, 0.975, age=5 * DAY)
        )
        assert advice.action == "full"

    def test_no_telemetry_bootstraps_full(self):
        advice = RecalibrationAdvisor().advise(MetricStore())
        assert advice.action == "full"


class TestResilienceCollector:
    def test_record_resilience_snapshots_counters(self):
        from repro.simulator import resilience

        resilience.reset_counters()
        try:
            s = MetricStore()
            s.record_resilience(0.0)
            resilience.count_event("retries", 2)
            resilience.count_event("pool_rebuilds")
            resilience.count_event("engine_fallbacks")
            s.record_resilience(1.0)
            family = s.sensors("simulator.resilience")
            assert family == [
                "simulator.resilience.admission_rejects",
                "simulator.resilience.engine_fallbacks",
                "simulator.resilience.inline_fallbacks",
                "simulator.resilience.pool_rebuilds",
                "simulator.resilience.retries",
            ]
            assert s.latest("simulator.resilience.retries").value == 2.0
            assert s.latest("simulator.resilience.pool_rebuilds").value == 1.0
            assert s.latest("simulator.resilience.admission_rejects").value == 0.0
            # two collection cycles landed on the shared timeline
            ts, vs = s.query("simulator.resilience.retries")
            assert list(ts) == [0.0, 1.0] and list(vs) == [0.0, 2.0]
        finally:
            resilience.reset_counters()
