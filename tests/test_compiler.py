"""Tests for the MLIR-like IR, dialects, lowering, and JIT."""

import math

import pytest

from repro.compiler import (
    CatalystKernel,
    JITCompiler,
    Module,
    Operation,
    QuakeKernel,
    circuit_to_qir,
    lower_to_qir,
    qir_to_circuit,
    register_dialect_conversion,
    verify_module,
)
from repro.compiler.ir import Builder
from repro.circuits import ghz_circuit
from repro.errors import CompilerError, DialectError, LoweringError
from repro.qdmi import QPUQDMIDevice, SnapshotQDMIDevice
from repro.qpu import QPUDevice
from repro.simulator import ideal_probabilities


class TestIR:
    def test_builder_emits_with_results(self):
        m = Module("k")
        b = Builder(m, "quake")
        (v,) = b.emit("alloca", result_types=["qubit"], size=2)
        assert v.type == "qubit"
        assert m.ops[0].qualified == "quake.alloca"

    def test_verify_detects_undefined_value(self):
        m = Module("bad")
        from repro.compiler.ir import Value

        m.add(Operation("quake", "h", operands=(Value(99, "qubit"),)))
        with pytest.raises(CompilerError):
            verify_module(m)

    def test_verify_detects_double_definition(self):
        m = Module("bad")
        from repro.compiler.ir import Value

        v = Value(0, "qubit")
        m.add(Operation("quake", "a", results=(v,)))
        m.add(Operation("quake", "b", results=(v,)))
        with pytest.raises(CompilerError):
            verify_module(m)

    def test_fingerprint_stable_and_sensitive(self):
        k1 = QuakeKernel(2)
        k1.h(0)
        k2 = QuakeKernel(2)
        k2.h(0)
        assert k1.module.fingerprint() == k2.module.fingerprint()
        k3 = QuakeKernel(2)
        k3.h(1)
        assert k1.module.fingerprint() != k3.module.fingerprint()

    def test_dump_mentions_ops(self):
        k = QuakeKernel(1)
        k.h(0)
        assert "quake.h" in k.module.dump()

    def test_dialects_used(self):
        k = QuakeKernel(1)
        k.h(0)
        assert k.module.dialects_used() == {"quake"}


class TestQuakeDialect:
    def test_ghz_via_quake(self):
        k = QuakeKernel(3, "ghz")
        k.h(0).cx(0, 1).cx(1, 2).mz()
        qc = qir_to_circuit(lower_to_qir(k.module))
        probs = ideal_probabilities(qc)
        assert probs == pytest.approx({"000": 0.5, "111": 0.5})

    def test_rotations(self):
        k = QuakeKernel(1)
        k.rx(math.pi, 0).mz()
        qc = qir_to_circuit(lower_to_qir(k.module))
        assert ideal_probabilities(qc) == pytest.approx({"1": 1.0})

    def test_unknown_gate_rejected(self):
        k = QuakeKernel(1)
        with pytest.raises(DialectError):
            k.gate("foo", [0])

    def test_wrong_arity_rejected(self):
        k = QuakeKernel(2)
        with pytest.raises(DialectError):
            k.gate("h", [0, 1])

    def test_qubit_out_of_range(self):
        k = QuakeKernel(2)
        with pytest.raises(DialectError):
            k.h(5)

    def test_controlled_z_spelling(self):
        """quake spells CZ as quake.z with a control operand."""
        k = QuakeKernel(2)
        k.cz(0, 1)
        assert any(
            op.name == "z" and op.attributes.get("num_controls") == 1
            for op in k.module.ops
        )


class TestCatalystDialect:
    def test_ghz_via_catalyst(self):
        c = CatalystKernel(3, "ghz")
        c.custom("Hadamard", [0]).custom("CNOT", [0, 1]).custom("CNOT", [1, 2])
        c.measure()
        qc = qir_to_circuit(lower_to_qir(c.module))
        assert ideal_probabilities(qc) == pytest.approx({"000": 0.5, "111": 0.5})

    def test_unknown_gate_rejected(self):
        c = CatalystKernel(1)
        with pytest.raises(DialectError):
            c.custom("Toffoli", [0])

    def test_parameterized_gate(self):
        c = CatalystKernel(1)
        c.custom("RX", [0], [math.pi]).measure()
        qc = qir_to_circuit(lower_to_qir(c.module))
        assert ideal_probabilities(qc) == pytest.approx({"1": 1.0})

    def test_both_dialects_agree(self):
        k = QuakeKernel(2)
        k.h(0).cx(0, 1).mz()
        c = CatalystKernel(2)
        c.custom("Hadamard", [0]).custom("CNOT", [0, 1]).measure()
        p1 = ideal_probabilities(qir_to_circuit(lower_to_qir(k.module)))
        p2 = ideal_probabilities(qir_to_circuit(lower_to_qir(c.module)))
        assert p1 == pytest.approx(p2)


class TestLowering:
    def test_unregistered_dialect_rejected(self):
        m = Module("x")
        b = Builder(m, "mystery")
        b.emit("alloca", result_types=["qubit"], size=1)
        b.emit("zap")
        with pytest.raises((DialectError, LoweringError)):
            lower_to_qir(m)

    def test_new_dialect_pluggable(self):
        """The paper's extensibility claim: register a dialect, lower it."""
        from repro.compiler.ir import Value

        def convert(op, qubit_index):
            from repro.compiler.lowering import _qir_gate

            if op.name == "hadamard_all":
                n = int(op.attributes["n"])
                return [_qir_gate("h", [q]) for q in range(n)]
            raise LoweringError(op.name)

        register_dialect_conversion("toy", convert)
        m = Module("toy-prog")
        b = Builder(m, "quake")
        b.emit("alloca", result_types=["qubit"], size=2)
        tb = Builder(m, "toy")
        tb.emit("hadamard_all", n=2)
        qc = qir_to_circuit(lower_to_qir(m))
        assert qc.count_ops()["h"] == 2

    def test_circuit_to_qir_roundtrip(self):
        qc = ghz_circuit(3)
        module = circuit_to_qir(qc)
        back = qir_to_circuit(module)
        assert back == qc

    def test_qir_module_requires_init(self):
        m = Module("no-init")
        with pytest.raises(LoweringError):
            qir_to_circuit(m)


class TestJIT:
    def test_cache_hit_same_calibration(self):
        device = QPUDevice(seed=1)
        jit = JITCompiler(QPUQDMIDevice(device))
        k = QuakeKernel(3)
        k.h(0).cx(0, 1).cx(1, 2).mz()
        a = jit.compile(k.module)
        b = jit.compile(k.module)
        assert not a.from_cache and b.from_cache
        assert jit.cache_info()["hits"] == 1

    def test_recalibration_invalidates_cache(self):
        device = QPUDevice(seed=1)
        jit = JITCompiler(QPUQDMIDevice(device))
        k = QuakeKernel(2)
        k.h(0).cx(0, 1).mz()
        jit.compile(k.module)
        device.calibrate("quick")
        b = jit.compile(k.module)
        assert not b.from_cache

    def test_snapshot_device_never_invalidates(self, snapshot):
        jit = JITCompiler(SnapshotQDMIDevice(snapshot))
        k = QuakeKernel(2)
        k.h(0).mz()
        jit.compile(k.module)
        assert jit.compile(k.module).from_cache

    def test_layout_method_keys_cache(self, snapshot):
        jit = JITCompiler(SnapshotQDMIDevice(snapshot))
        k = QuakeKernel(2)
        k.h(0).cx(0, 1).mz()
        jit.compile(k.module, layout_method="trivial")
        b = jit.compile(k.module, layout_method="noise_adaptive")
        assert not b.from_cache

    def test_compiled_circuit_is_native(self, device):
        jit = JITCompiler(QPUQDMIDevice(device))
        artifact = jit.compile(ghz_circuit(4))
        assert artifact.circuit.is_native()
        device.execute(artifact.circuit, shots=32)  # executes cleanly

    def test_rejects_unknown_program_type(self, device):
        jit = JITCompiler(QPUQDMIDevice(device))
        with pytest.raises(CompilerError):
            jit.compile("not a program")
