"""Tests for observables, optimizers, VQE, and QAOA."""

import math

import networkx as nx
import numpy as np
import pytest

from repro.circuits import QuantumCircuit
from repro.errors import ReproError
from repro.hybrid import (
    QAOA,
    VQE,
    PauliSum,
    PauliTerm,
    cut_value,
    estimate_expectation,
    h2_hamiltonian,
    hardware_efficient_ansatz,
    max_cut_brute_force,
    nelder_mead_minimize,
    spsa_minimize,
    transverse_field_ising,
)
from repro.simulator import sample_counts
from repro.simulator.statevector import simulate_statevector


def noiseless_runner(seed=0):
    rng = np.random.default_rng(seed)
    return lambda qc, shots: sample_counts(qc, shots, rng=rng)


class TestPauliTerm:
    def test_make_drops_identity_labels(self):
        t = PauliTerm.make(0.5, {0: "I", 1: "Z"})
        assert t.paulis == ((1, "Z"),)

    def test_invalid_label_rejected(self):
        with pytest.raises(ReproError):
            PauliTerm.make(1.0, {0: "W"})

    def test_basis_rotation_x(self):
        t = PauliTerm.make(1.0, {0: "X"})
        circ = t.measurement_basis_circuit(1)
        assert [i.name for i in circ] == ["h"]

    def test_basis_rotation_y(self):
        t = PauliTerm.make(1.0, {0: "Y"})
        assert [i.name for i in t.measurement_basis_circuit(1)] == ["sdg", "h"]

    def test_identity_expectation_is_one(self):
        from repro.simulator.counts import Counts

        t = PauliTerm.make(2.0, {})
        assert t.expectation_from_counts(Counts({"0": 5})) == 1.0


class TestPauliSum:
    def test_merges_duplicate_terms(self):
        s = PauliSum.from_list([(0.5, {0: "Z"}), (0.25, {0: "Z"})])
        assert len(s) == 1
        assert s.terms[0].coefficient == pytest.approx(0.75)

    def test_num_qubits(self):
        s = PauliSum.from_list([(1.0, {3: "X"})])
        assert s.num_qubits == 4

    def test_identity_offset(self):
        s = PauliSum.from_list([(2.5, {}), (1.0, {0: "Z"})])
        assert s.identity_offset == pytest.approx(2.5)

    def test_grouping_qubit_wise_commuting(self):
        s = PauliSum.from_list(
            [(1.0, {0: "Z"}), (1.0, {1: "Z"}), (1.0, {0: "Z", 1: "Z"}), (1.0, {0: "X"})]
        )
        groups = s.grouped_terms()
        # Z-terms share a group; the X-term needs its own
        assert len(groups) == 2

    def test_matrix_hermitian(self):
        m = h2_hamiltonian().matrix()
        np.testing.assert_allclose(m, m.conj().T, atol=1e-12)

    def test_exact_ground_energy_tfim(self):
        """TFIM at J=h=1 on 2 qubits: E0 = -sqrt(J² + ... )  — check
        against direct diagonalization only for consistency."""
        s = transverse_field_ising(2)
        e = s.exact_ground_energy()
        m = s.matrix()
        assert e == pytest.approx(float(np.linalg.eigvalsh(m)[0]))


class TestEstimateExpectation:
    @pytest.mark.parametrize("seed", range(3))
    def test_matches_statevector(self, seed):
        """Counts-based ⟨H⟩ ≈ exact ⟨ψ|H|ψ⟩ on random ansatz states."""
        ham = h2_hamiltonian()
        tmpl, params = hardware_efficient_ansatz(2, 2)
        rng = np.random.default_rng(seed)
        vals = rng.uniform(-1, 1, len(params))
        bound = tmpl.bind(dict(zip(params, vals)))
        exact = float(
            np.real(
                simulate_statevector(bound).data.conj()
                @ (ham.matrix() @ simulate_statevector(bound).data)
            )
        )
        est = estimate_expectation(ham, noiseless_runner(seed), bound, shots=60_000)
        assert est == pytest.approx(exact, abs=0.02)

    def test_identity_only_hamiltonian(self):
        ham = PauliSum.from_list([(3.5, {})])
        qc = QuantumCircuit(1)
        assert estimate_expectation(ham, noiseless_runner(), qc) == pytest.approx(3.5)


class TestOptimizers:
    def test_spsa_minimizes_quadratic(self):
        result = spsa_minimize(
            lambda x: float(np.sum((x - 2.0) ** 2)),
            np.zeros(3),
            iterations=150,
            rng=0,
        )
        assert result.fun < 0.1
        np.testing.assert_allclose(result.x, 2.0, atol=0.5)

    def test_spsa_history_monotone(self):
        result = spsa_minimize(
            lambda x: float(np.sum(x**2)), np.ones(2), iterations=50, rng=1
        )
        hist = np.array(result.history)
        assert (np.diff(hist) <= 1e-12).all()  # best-so-far never worsens

    def test_spsa_two_evals_per_iteration(self):
        calls = [0]

        def f(x):
            calls[0] += 1
            return float(np.sum(x**2))

        spsa_minimize(f, np.ones(2), iterations=20, rng=2)
        assert calls[0] == 40

    def test_spsa_rejects_zero_iterations(self):
        with pytest.raises(ReproError):
            spsa_minimize(lambda x: 0.0, [0.0], iterations=0)

    def test_nelder_mead_quadratic(self):
        result = nelder_mead_minimize(
            lambda x: float(np.sum((x - 1.0) ** 2)), np.zeros(2)
        )
        assert result.fun < 1e-6


class TestAnsatz:
    def test_parameter_count(self):
        _, params = hardware_efficient_ansatz(4, 3)
        assert len(params) == 4 * 3 * 2

    def test_invalid_shape_rejected(self):
        with pytest.raises(ReproError):
            hardware_efficient_ansatz(0, 1)


class TestVQE:
    def test_h2_converges_near_exact(self):
        ham = h2_hamiltonian()
        vqe = VQE(ham, noiseless_runner(3), shots=1500)
        result = vqe.minimize(optimizer="spsa", iterations=120, rng=3)
        assert result.exact_energy is not None
        assert result.error_to_exact < 0.15  # chemical-accuracy-ish at these shots

    def test_energy_evaluations_counted(self):
        vqe = VQE(h2_hamiltonian(), noiseless_runner(), shots=200)
        vqe.energy(np.zeros(len(vqe.parameters)))
        assert vqe.energy_evaluations == 1

    def test_unknown_optimizer_rejected(self):
        vqe = VQE(h2_hamiltonian(), noiseless_runner(), shots=100)
        with pytest.raises(ReproError):
            vqe.minimize(optimizer="adamw")

    def test_undersized_ansatz_rejected(self):
        ham = transverse_field_ising(3)
        small = hardware_efficient_ansatz(2, 1)
        with pytest.raises(ReproError):
            VQE(ham, noiseless_runner(), ansatz=small)


class TestQAOA:
    def test_cut_value_little_endian(self):
        g = nx.path_graph(3)
        # bits "011": node0=1, node1=1, node2=0 → only edge (1,2) cut
        assert cut_value(g, "011") == 1
        assert cut_value(g, "010") == 2

    def test_brute_force_cycle(self):
        g = nx.cycle_graph(4)
        best, bits = max_cut_brute_force(g)
        assert best == 4

    def test_qaoa_beats_random_guessing(self):
        g = nx.cycle_graph(6)
        qaoa = QAOA(g, noiseless_runner(5), p=2, shots=700)
        result = qaoa.minimize(iterations=50, rng=5)
        # random assignment cuts half the edges (3) on average
        assert result.expected_cut > 3.5
        assert result.approximation_ratio >= 5.0 / 6.0

    def test_wrong_bitstring_width(self):
        with pytest.raises(ReproError):
            cut_value(nx.path_graph(3), "01")

    def test_graph_nodes_must_be_range(self):
        g = nx.Graph()
        g.add_edge("a", "b")
        with pytest.raises(ReproError):
            QAOA(g, noiseless_runner())
