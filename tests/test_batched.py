"""Batched trajectory execution and process-pool shot sharding.

Two scale-out layers over the grouped trajectory sampler, one contract
each:

* the **batched grouped walk** (`engine_mode("batched")` /
  ``BatchedDenseEngine``) stacks every trajectory group into one
  ``(rows, 2^n)`` array and advances all of them per kernel call — a
  pure performance policy, so seeded counts must be **bit-identical**
  to the scalar ``"fast"`` walk on every workload;
* **shot sharding** (``engine_mode(workers=...)`` /
  :func:`sample_counts_sharded`) splits shots into fixed blocks with
  per-block seed-derived streams — a documented semantics switch whose
  own contract is that **every worker count reproduces the same
  counts** bit for bit.
"""

import numpy as np
import pytest

from helpers.parity import (
    assert_counts_identical,
    counts_under_mode,
    ghz_t as _ghz_t,
    heavy_noise as _heavy_noise,
    light_noise as _noise,
)
from repro.circuits import ghz_circuit
from repro.circuits.circuit import QuantumCircuit
from repro.errors import EngineModeError, SimulationError
from repro.simulator import (
    BatchedDenseEngine,
    BatchedStateVector,
    NoiseModel,
    StateVector,
    depolarizing_error,
    engine_mode,
    sample_counts,
    sample_counts_sharded,
    thermal_relaxation_error,
)
from repro.simulator import sampler as sampler_mod
from repro.simulator import sharding as sharding_mod
from repro.simulator.engines import DenseEngine, select_engine
from repro.simulator.noise import ErrorTerm, QuantumError


def _random_batch(num_qubits, rows, seed):
    """A batch of normalized random states plus per-row scalar clones."""
    r = np.random.default_rng(seed)
    batch = BatchedStateVector(num_qubits, rows)
    scalars = []
    for i in range(rows):
        amps = r.standard_normal(1 << num_qubits) + 1j * r.standard_normal(
            1 << num_qubits
        )
        amps /= np.linalg.norm(amps)
        sv = StateVector(num_qubits)
        sv._data[:] = amps
        batch.set_row(i, amps)
        scalars.append(sv)
    return batch, scalars


class TestBatchedStateVectorUnits:
    """The batched container must reproduce the scalar kernels row for
    row — same arithmetic, same order, bit-identical amplitudes."""

    def test_initial_state_is_all_zeros_ket(self):
        batch = BatchedStateVector(3, 4)
        assert batch.data.shape == (4, 8)
        assert np.array_equal(batch.norms(), np.ones(4))
        assert np.array_equal(batch.data[:, 0], np.ones(4))

    @pytest.mark.parametrize("gate,qubits", [
        ("h", [0]),
        ("h", [2]),
        ("t", [1]),
        ("x", [3]),
        ("y", [0]),
        ("cx", [1, 3]),
        ("cx", [3, 0]),
        ("cz", [0, 2]),
        ("swap", [1, 2]),
    ])
    def test_apply_matrix_matches_scalar_rows_bitwise(self, gate, qubits):
        from repro.circuits.gates import spec

        matrix = spec(gate).matrix()
        batch, scalars = _random_batch(4, 5, seed=11)
        batch.apply_matrix(matrix, qubits)
        for sv in scalars:
            sv.apply_matrix(matrix, qubits)
        for i, sv in enumerate(scalars):
            assert np.array_equal(batch.data[i], sv._data), (gate, i)

    def test_apply_diagonal_matches_scalar_rows_bitwise(self):
        diag = np.exp(1j * np.array([0.0, 0.3, 0.7, 1.1]))
        batch, scalars = _random_batch(4, 3, seed=5)
        batch.apply_diagonal(diag, [3, 1])
        for sv in scalars:
            sv.apply_diagonal(diag, [3, 1])
        for i, sv in enumerate(scalars):
            assert np.array_equal(batch.data[i], sv._data)

    def test_marginal_and_collapse_match_scalar(self):
        batch, scalars = _random_batch(3, 4, seed=9)
        probs = batch.marginal_probability_one(1)
        for i, sv in enumerate(scalars):
            assert probs[i] == pytest.approx(sv.marginal_probability_one(1))
        outcomes = np.array([0, 1, 0, 1])
        batch.collapse(1, outcomes)
        for i, sv in enumerate(scalars):
            sv.collapse(1, int(outcomes[i]))
            np.testing.assert_allclose(batch.data[i], sv._data, atol=1e-12)

    def test_sample_matches_scalar_stream_bitwise(self):
        """Row-by-row sampling must consume the RNG exactly as the
        scalar states would in visit order — the walk's parity hinges
        on it."""
        batch, scalars = _random_batch(3, 4, seed=2)
        bits = batch.sample(50, np.random.default_rng(42), [2, 0, 1])
        r = np.random.default_rng(42)
        for i, sv in enumerate(scalars):
            expected = sv.sample(50, r, [2, 0, 1])
            assert np.array_equal(bits[i], expected)

    def test_cdfs_end_at_one(self):
        batch, _ = _random_batch(4, 3, seed=1)
        cdfs = batch.cdfs()
        assert np.array_equal(cdfs[:, -1], np.ones(3))
        assert np.all(np.diff(cdfs, axis=1) >= 0)

    def test_narrow_and_row_views_alias_storage(self):
        batch = BatchedStateVector(2, 4)
        narrowed = batch.narrow(2)
        assert np.shares_memory(narrowed.data, batch.data)
        view = batch.row_view(1)
        view.apply_matrix(np.array([[0, 1], [1, 0]], dtype=complex), [0])
        assert batch.data[1, 1] == 1.0  # mutated through the view
        # store_row after an in-place mutation is a no-op copy
        batch.store_row(1, view)
        assert batch.data[1, 1] == 1.0

    def test_store_row_copies_rebound_state(self):
        batch = BatchedStateVector(1, 2)
        sv = StateVector(1)
        sv._data = np.array([0.0, 1.0], dtype=complex)  # rebound storage
        batch.store_row(0, sv)
        assert batch.data[0, 1] == 1.0


class TestBatchedWalkParity:
    """Seeded counts under ``engine_mode("batched")`` must be
    bit-identical to the scalar ``"fast"`` walk: same realization draws,
    same per-group outcome draws in visit order, same readout stream."""

    def _counts(self, qc, mode, seed, noise, shots=512):
        return counts_under_mode(qc, mode, seed, noise=noise, shots=shots)

    @pytest.mark.parametrize("seed", [0, 7, 123])
    def test_ghz_grouped_counts_identical(self, seed):
        qc = ghz_circuit(10)
        fast = self._counts(qc, "fast", seed, _noise())
        batched = self._counts(qc, "batched", seed, _noise())
        assert_counts_identical(fast, batched, context=("batched", seed))

    @pytest.mark.parametrize("seed", [0, 7, 123])
    def test_heavy_noise_multi_error_counts_identical(self, seed):
        """Heavy noise on GHZ+T: multi-error groups (mid-walk later
        injections) and diagonal-run fusion windows both in play."""
        qc = _ghz_t(8)
        fast = self._counts(qc, "fast", seed, _heavy_noise())
        batched = self._counts(qc, "batched", seed, _heavy_noise())
        assert_counts_identical(fast, batched, context=("batched-heavy", seed))

    def test_thermal_reset_noise_counts_identical(self):
        """Reset-type error terms route through the same injection
        helper in both walks."""
        nm = NoiseModel()
        nm.add_gate_error(thermal_relaxation_error(80.0, 60.0, 25.0), "h")
        nm.add_gate_error(
            QuantumError([ErrorTerm("reset", 0.05)]), "cx"
        )
        qc = ghz_circuit(8)
        fast = self._counts(qc, "fast", 7, nm)
        batched = self._counts(qc, "batched", 7, nm)
        assert fast.to_dict() == batched.to_dict()

    def test_per_shot_circuit_falls_back_identically(self):
        """Mid-circuit reset forces the per-shot path in both modes —
        the batched walk must stay out of the way."""
        qc = QuantumCircuit(2)
        qc.h(0)
        qc.reset(1)
        qc.h(1)
        qc.measure(0)
        qc.measure(1)
        fast = self._counts(qc, "fast", 3, _noise(), shots=256)
        batched = self._counts(qc, "batched", 3, _noise(), shots=256)
        assert fast.to_dict() == batched.to_dict()

    def test_auto_mode_counts_unchanged_by_batched_walk(self):
        """"auto" engages the batched walk on dense routes; its counts
        must equal "fast" (which never batches) on the same workload."""
        qc = ghz_circuit(10)
        # plain dense route under auto: non-Clifford tail, no Clifford
        # 2q prefix structure
        qc_t = _ghz_t(10)
        fast = self._counts(qc_t, "fast", 7, _noise())
        auto = self._counts(qc_t, "auto", 7, _noise())
        if select_engine("auto", qc_t) is select_engine("fast", qc_t):
            assert fast.to_dict() == auto.to_dict()
        del qc

    def test_batch_min_groups_threshold_is_pure_policy(self):
        """Counts are identical above or below the engagement
        threshold (scalar fallback)."""
        qc = ghz_circuit(10)
        with engine_mode("batched"):
            engaged = sample_counts(qc, 512, noise=_noise(), rng=7)
        with engine_mode("batched", batch_min_groups=10_000):
            scalar = sample_counts(qc, 512, noise=_noise(), rng=7)
        assert engaged.to_dict() == scalar.to_dict()

    def test_batched_walk_actually_fires(self, monkeypatch):
        """The parity pins above prove nothing if the batched walk never
        engages — spy on it."""
        calls = []
        real = sampler_mod._grouped_batched_walk

        def spy(*args, **kwargs):
            calls.append(1)
            return real(*args, **kwargs)

        monkeypatch.setattr(sampler_mod, "_grouped_batched_walk", spy)
        with engine_mode("batched"):
            sample_counts(ghz_circuit(10), 512, noise=_noise(), rng=7)
        assert calls, "batched walk did not engage on the pinned workload"

    def test_wide_registers_keep_the_scalar_walk_under_dense_sites(
        self, monkeypatch
    ):
        """Beyond the cache-working-set width the batched walk engages
        only in the blocked-wide regime, and only when the realized
        injection sites are sparse enough for the lockstep windows to
        block.  GHZ under per-gate noise has a site at nearly every
        gate, so the walk must disengage — and the scalar fallback is
        the identical code path, so counts match "fast" trivially."""
        wide = ghz_circuit(16)
        engine_cls = select_engine("batched", wide)
        assert issubclass(engine_cls, DenseEngine)
        with engine_mode("batched"):
            # without realization data the width alone now allows the
            # blocked-wide regime...
            assert sampler_mod._use_batched_walk(engine_cls, wide, 64)
            # ...but in the regime gap (wider than cache-resident, not
            # wider than a sweep tile) the walk always stays scalar...
            from repro.simulator.engines import dense as dense_mod

            gap = ghz_circuit(dense_mod.blocked_tile_qubits())
            assert not sampler_mod._use_batched_walk(
                select_engine("batched", gap), gap, 64
            )
            # ...and per-gate noise fragments the windows below the
            # engagement threshold, so realization data vetoes it.
            noisy = sampler_mod._noisy_ops(wide, _noise(), {})
            groups = sampler_mod._group_realizations(
                noisy, 128, np.random.default_rng(7)
            )
            ordered = sorted(
                groups.items(), key=lambda kv: kv[0] or ((1 << 30, 0),)
            )
            assert not sampler_mod._use_batched_walk(
                engine_cls, wide, len(ordered), ordered=ordered
            )

        def boom(*args, **kwargs):  # pragma: no cover
            raise AssertionError("batched walk engaged on site-dense ghz")

        monkeypatch.setattr(sampler_mod, "_grouped_batched_walk", boom)
        fast = self._counts(wide, "fast", 7, _noise(), shots=128)
        batched = self._counts(wide, "batched", 7, _noise(), shots=128)
        assert fast.to_dict() == batched.to_dict()

    def test_batched_engine_registered_and_routed(self):
        from repro.simulator.engines import get_engine

        assert get_engine("batched") is BatchedDenseEngine
        assert select_engine("batched", ghz_circuit(8)) is BatchedDenseEngine
        # wide Clifford still routes to the tableau
        from repro.simulator.engines import TableauEngine

        assert select_engine("batched", ghz_circuit(40)) is get_engine(
            TableauEngine.name
        )


class TestSharding:
    """The sharded stream's one invariant: counts are a function of
    ``(circuit, shots, noise, seed, block_shots)`` alone — never of the
    worker count."""

    @pytest.mark.parametrize("noise_fn", [_noise, _heavy_noise])
    def test_any_worker_count_reproduces_single_worker(self, noise_fn):
        qc = ghz_circuit(10)
        reference = sample_counts_sharded(
            qc, 1000, noise=noise_fn(), seed=7, workers=1
        )
        assert reference.shots == 1000
        for workers in (2, 4):
            counts = sample_counts_sharded(
                qc, 1000, noise=noise_fn(), seed=7, workers=workers
            )
            assert counts.to_dict() == reference.to_dict(), workers

    def test_facade_matches_direct_call(self):
        qc = ghz_circuit(8)
        direct = sample_counts_sharded(qc, 700, noise=_noise(), seed=11, workers=2)
        with engine_mode("fast", workers=2):
            facade = sample_counts(qc, 700, noise=_noise(), rng=11)
        assert facade.to_dict() == direct.to_dict()

    def test_live_generator_rejected(self):
        qc = ghz_circuit(4)
        with pytest.raises(SimulationError, match="int seed or None"):
            sample_counts_sharded(qc, 10, seed=np.random.default_rng(3))
        with engine_mode("fast", workers=2):
            with pytest.raises(SimulationError, match="int seed or None"):
                sample_counts(qc, 10, rng=np.random.default_rng(3))

    def test_invalid_workers_and_shots_rejected(self):
        qc = ghz_circuit(4)
        with pytest.raises(SimulationError, match="workers"):
            sample_counts_sharded(qc, 10, seed=0, workers=0)
        with pytest.raises(SimulationError, match="workers"):
            sample_counts_sharded(qc, 10, seed=0, workers=True)
        with pytest.raises(SimulationError, match="shots"):
            sample_counts_sharded(qc, 0, seed=0)
        with pytest.raises(SimulationError, match="block_shots"):
            sample_counts_sharded(qc, 10, seed=0, block_shots=0)

    def test_block_partition_fixed_and_ragged(self):
        assert sharding_mod._block_sizes(1000, 256) == [256, 256, 256, 232]
        assert sharding_mod._block_sizes(256, 256) == [256]
        assert sharding_mod._block_sizes(5, 256) == [5]

    def test_block_partition_independent_of_workers(self):
        """The partition is a function of (shots, block_shots) only —
        resizing the pool must never move block boundaries, or the
        per-block streams would change."""
        qc = ghz_circuit(6)
        a = sample_counts_sharded(qc, 600, noise=_noise(), seed=3, block_shots=100)
        b = sample_counts_sharded(
            qc, 600, noise=_noise(), seed=3, workers=3, block_shots=100
        )
        assert a.to_dict() == b.to_dict()

    def test_clean_prefix_state_matches_direct_simulation(self):
        qc = ghz_circuit(6)
        # cx-only noise leaves the leading h (and more) as a clean prefix
        nm = NoiseModel()
        nm.add_gate_error(depolarizing_error(0.02, 2), "cx")
        with engine_mode("fast"):
            prefix = sharding_mod._clean_prefix_state(qc, nm, {})
        assert prefix is not None
        state, position = prefix
        noisy = sampler_mod._noisy_ops(qc, nm, {})
        assert position == noisy[0][0] > 0
        engine = DenseEngine(qc)
        engine.advance(list(qc)[:position])
        assert np.array_equal(state, engine.to_dense().data)

    def test_clean_prefix_inapplicable_cases(self):
        qc = ghz_circuit(6)
        per_shot = QuantumCircuit(2)
        per_shot.h(0)
        per_shot.reset(1)
        per_shot.measure(0)
        with engine_mode("fast"):
            assert sharding_mod._clean_prefix_state(per_shot, _noise(), {}) is None
            # noise on the very first instruction: nothing to share
            nm = NoiseModel()
            nm.add_gate_error(depolarizing_error(0.01, 1), "h")
            assert sharding_mod._clean_prefix_state(qc, nm, {}) is None

    def test_none_seed_still_samples(self):
        counts = sample_counts_sharded(
            ghz_circuit(4), 300, noise=_noise(), seed=None, workers=2
        )
        assert counts.shots == 300

    def test_noiseless_circuit_shards(self):
        qc = ghz_circuit(5)
        a = sample_counts_sharded(qc, 600, seed=9, workers=1)
        b = sample_counts_sharded(qc, 600, seed=9, workers=3)
        assert a.to_dict() == b.to_dict()


class TestEngineModeBatchOptions:
    """Sub-option hygiene for batch_min_groups / workers: mode-scoped,
    validated before any global mutates, restored on exit."""

    def _globals(self):
        return (sampler_mod.BATCH_MIN_GROUPS, sampler_mod.WORKERS)

    def test_batch_min_groups_scoped_to_batched_modes(self):
        before = self._globals()
        for mode in ("fast", "baseline", "stabilizer", "mps", "hybrid"):
            with pytest.raises(EngineModeError, match="batch_min_groups"):
                with engine_mode(mode, batch_min_groups=8):
                    pass  # pragma: no cover
        assert self._globals() == before

    def test_workers_rejected_for_baseline(self):
        before = self._globals()
        with pytest.raises(EngineModeError, match="workers"):
            with engine_mode("baseline", workers=2):
                pass  # pragma: no cover
        assert self._globals() == before

    @pytest.mark.parametrize("bad", [0, -1, True, 1.5, "two"])
    def test_invalid_values_rejected_before_mutation(self, bad):
        before = self._globals()
        with pytest.raises(EngineModeError):
            with engine_mode("batched", batch_min_groups=bad):
                pass  # pragma: no cover
        with pytest.raises(EngineModeError):
            with engine_mode("fast", workers=bad):
                pass  # pragma: no cover
        assert self._globals() == before

    def test_valid_values_applied_and_restored(self):
        before = self._globals()
        with engine_mode("batched", batch_min_groups=9):
            assert sampler_mod.BATCH_MIN_GROUPS == 9
            assert sampler_mod.WORKERS is None
        with engine_mode("auto", batch_min_groups=3, workers=2):
            assert sampler_mod.BATCH_MIN_GROUPS == 3
            assert sampler_mod.WORKERS == 2
        assert self._globals() == before

    def test_unknown_option_message_lists_new_sub_options(self):
        with pytest.raises(
            EngineModeError, match="batch_min_groups, batch_max_bytes, workers"
        ):
            with engine_mode("fast", wrokers=2):
                pass  # pragma: no cover

    def test_batch_max_bytes_scoped_to_dense_family_modes(self):
        before = (sampler_mod.BATCH_MAX_BYTES,)
        for mode in ("baseline", "stabilizer", "mps"):
            with pytest.raises(EngineModeError, match="batch_max_bytes"):
                with engine_mode(mode, batch_max_bytes=65536):
                    pass  # pragma: no cover
        assert (sampler_mod.BATCH_MAX_BYTES,) == before

    @pytest.mark.parametrize("bad", [0, 1023, -1, True, 1.5, "big"])
    def test_batch_max_bytes_invalid_values_rejected_before_mutation(self, bad):
        before = (sampler_mod.BATCH_MAX_BYTES,)
        with pytest.raises(EngineModeError):
            with engine_mode("fast", batch_max_bytes=bad):
                pass  # pragma: no cover
        assert (sampler_mod.BATCH_MAX_BYTES,) == before

    def test_batch_max_bytes_applied_and_restored(self):
        before = sampler_mod.BATCH_MAX_BYTES
        for mode in ("fast", "batched", "hybrid", "auto"):
            with engine_mode(mode, batch_max_bytes=65536):
                assert sampler_mod.BATCH_MAX_BYTES == 65536
            assert sampler_mod.BATCH_MAX_BYTES == before
        # numpy integers from config code are accepted
        with engine_mode("fast", batch_max_bytes=np.int64(131072)):
            assert sampler_mod.BATCH_MAX_BYTES == 131072
        assert sampler_mod.BATCH_MAX_BYTES == before
