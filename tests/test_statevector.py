"""Tests for the dense state-vector engine."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import QuantumCircuit, ghz_circuit, random_circuit
from repro.errors import SimulationError
from repro.simulator.statevector import (
    StateVector,
    _embed,
    circuit_unitary,
    ghz_state,
    simulate_statevector,
)
from tests.conftest import assert_close_up_to_phase, random_unitary_2x2


class TestBasics:
    def test_initial_state_is_zero_ket(self):
        sv = StateVector(3)
        assert sv.data[0] == 1.0
        assert np.count_nonzero(sv.data) == 1

    def test_rejects_zero_qubits(self):
        with pytest.raises(SimulationError):
            StateVector(0)

    def test_rejects_too_many_qubits(self):
        with pytest.raises(SimulationError):
            StateVector(27)

    def test_explicit_data_validated(self):
        with pytest.raises(SimulationError):
            StateVector(2, np.ones(3))

    def test_copy_is_independent(self):
        a = StateVector(2)
        b = a.copy()
        b.apply_gate("x", [0])
        assert a.data[0] == 1.0

    def test_normalize(self):
        sv = StateVector(1, np.array([2.0, 0.0]))
        sv.normalize()
        assert sv.norm() == pytest.approx(1.0)

    def test_normalize_zero_raises(self):
        sv = StateVector(1, np.array([0.0, 0.0]))
        with pytest.raises(SimulationError):
            sv.normalize()


class TestGateApplication:
    def test_x_on_each_qubit_little_endian(self):
        for q in range(3):
            sv = StateVector(3)
            sv.apply_gate("x", [q])
            assert sv.data[1 << q] == pytest.approx(1.0)

    def test_two_qubit_operand_order(self):
        """cx(control=0, target=1): |q0=1⟩ → |q0=1, q1=1⟩."""
        sv = StateVector(2)
        sv.apply_gate("x", [0])
        sv.apply_gate("cx", [0, 1])
        assert abs(sv.data[3]) == pytest.approx(1.0)

    def test_two_qubit_matches_embedded_matrix(self):
        rng = np.random.default_rng(3)
        from repro.circuits.gates import cx_matrix

        for qubits in ((0, 2), (2, 0), (1, 3)):
            vec = rng.normal(size=16) + 1j * rng.normal(size=16)
            vec /= np.linalg.norm(vec)
            sv = StateVector(4, vec)
            sv.apply_matrix(cx_matrix(), qubits)
            expected = _embed(cx_matrix(), qubits, 4) @ vec
            np.testing.assert_allclose(sv.data, expected, atol=1e-12)

    @given(st.integers(0, 5000))
    @settings(max_examples=40, deadline=None)
    def test_random_1q_matches_embed(self, seed):
        rng = np.random.default_rng(seed)
        u = random_unitary_2x2(rng)
        q = int(rng.integers(3))
        vec = rng.normal(size=8) + 1j * rng.normal(size=8)
        vec /= np.linalg.norm(vec)
        sv = StateVector(3, vec)
        sv.apply_matrix(u, [q])
        np.testing.assert_allclose(sv.data, _embed(u, [q], 3) @ vec, atol=1e-10)

    def test_norm_preserved_by_unitaries(self):
        qc = random_circuit(4, 30, seed=8, measure=False)
        sv = simulate_statevector(qc)
        assert sv.norm() == pytest.approx(1.0, abs=1e-10)

    def test_duplicate_operands_rejected(self):
        sv = StateVector(2)
        from repro.circuits.gates import cx_matrix

        with pytest.raises(SimulationError):
            sv.apply_matrix(cx_matrix(), [0, 0])

    def test_directive_rejected(self):
        with pytest.raises(SimulationError):
            StateVector(1).apply_gate("measure", [0])

    def test_apply_pauli_string(self):
        sv = StateVector(2)
        sv.apply_pauli("XI", [0, 1])
        assert abs(sv.data[1]) == pytest.approx(1.0)

    def test_apply_pauli_bad_label(self):
        with pytest.raises(SimulationError):
            StateVector(1).apply_pauli("Q", [0])


class TestMeasurement:
    def test_marginal_probability(self):
        sv = StateVector(2)
        sv.apply_gate("h", [0])
        assert sv.marginal_probability_one(0) == pytest.approx(0.5)
        assert sv.marginal_probability_one(1) == pytest.approx(0.0)

    def test_collapse_renormalizes(self):
        sv = StateVector(1)
        sv.apply_gate("h", [0])
        p = sv.collapse(0, 1)
        assert p == pytest.approx(0.5)
        assert abs(sv.data[1]) == pytest.approx(1.0)

    def test_collapse_impossible_outcome_raises(self):
        sv = StateVector(1)
        with pytest.raises(SimulationError):
            sv.collapse(0, 1)

    def test_measure_collapses_consistently(self):
        sv = StateVector(2)
        sv.apply_gate("h", [0])
        sv.apply_gate("cx", [0, 1])
        outcome = sv.measure(0, rng=0)
        # entangled: second qubit must agree
        assert sv.marginal_probability_one(1) == pytest.approx(float(outcome))

    def test_reset_forces_zero(self):
        sv = StateVector(1)
        sv.apply_gate("x", [0])
        sv.reset(0, rng=0)
        assert abs(sv.data[0]) == pytest.approx(1.0)

    def test_sample_statistics(self):
        sv = StateVector(1)
        sv.apply_gate("h", [0])
        bits = sv.sample(20_000, rng=1)
        assert bits.shape == (20_000, 1)
        assert abs(bits.mean() - 0.5) < 0.02

    def test_sample_subset_of_qubits(self):
        sv = StateVector(3)
        sv.apply_gate("x", [2])
        bits = sv.sample(10, rng=0, qubits=[2, 0])
        assert (bits[:, 0] == 1).all()
        assert (bits[:, 1] == 0).all()


class TestObservables:
    def test_expectation_z_on_zero(self):
        assert StateVector(1).expectation_pauli("Z", [0]) == pytest.approx(1.0)

    def test_expectation_x_on_plus(self):
        sv = StateVector(1)
        sv.apply_gate("h", [0])
        assert sv.expectation_pauli("X", [0]) == pytest.approx(1.0)

    def test_ghz_zz_correlation(self):
        sv = simulate_statevector(ghz_circuit(3, measure=False))
        assert sv.expectation_pauli("ZZ", [0, 1]) == pytest.approx(1.0)
        assert sv.expectation_pauli("Z", [0]) == pytest.approx(0.0, abs=1e-12)

    def test_expectation_diagonal(self):
        sv = StateVector(1)
        sv.apply_gate("x", [0])
        assert sv.expectation_diagonal(np.array([3.0, 7.0])) == pytest.approx(7.0)

    def test_fidelity_orthogonal_and_equal(self):
        a, b = StateVector(2), StateVector(2)
        assert a.fidelity(b) == pytest.approx(1.0)
        b.apply_gate("x", [0])
        assert a.fidelity(b) == pytest.approx(0.0)


class TestSimulateCircuit:
    def test_ghz_state_production(self):
        sv = simulate_statevector(ghz_circuit(5, measure=False))
        assert sv.fidelity(ghz_state(5)) == pytest.approx(1.0)

    def test_measure_and_barrier_skipped(self):
        sv = simulate_statevector(ghz_circuit(3))  # has measures
        assert sv.norm() == pytest.approx(1.0)

    def test_initial_state_used(self):
        init = StateVector(2)
        init.apply_gate("x", [0])
        qc = QuantumCircuit(2)
        qc.cx(0, 1)
        sv = simulate_statevector(qc, initial=init)
        assert abs(sv.data[3]) == pytest.approx(1.0)

    def test_mismatched_initial_raises(self):
        with pytest.raises(SimulationError):
            simulate_statevector(ghz_circuit(3), initial=StateVector(2))

    def test_reset_in_circuit(self):
        qc = QuantumCircuit(1)
        qc.x(0)
        qc.reset(0)
        sv = simulate_statevector(qc, rng=0)
        assert abs(sv.data[0]) == pytest.approx(1.0)


class TestCircuitUnitary:
    def test_matches_statevector_on_zero(self):
        qc = random_circuit(3, 15, seed=2, measure=False)
        u = circuit_unitary(qc)
        sv = simulate_statevector(qc)
        np.testing.assert_allclose(u[:, 0], sv.data, atol=1e-10)

    def test_is_unitary(self):
        qc = random_circuit(3, 20, seed=5, measure=False)
        u = circuit_unitary(qc)
        np.testing.assert_allclose(u @ u.conj().T, np.eye(8), atol=1e-10)

    def test_rejects_directives(self):
        with pytest.raises(SimulationError):
            circuit_unitary(ghz_circuit(2))  # contains measure
