"""Tests for repro.utils: RNG plumbing, units, validation."""

import math

import numpy as np
import pytest

from repro.utils.rng import as_rng, child_rng, spawn_many
from repro.utils.units import (
    DAY,
    HOUR,
    MINUTE,
    dbm_to_watt,
    format_duration,
    format_si,
    watt_to_dbm,
)
from repro.utils.validation import (
    check_distinct,
    check_index,
    check_positive,
    check_probability,
)


class TestRng:
    def test_as_rng_from_int_is_deterministic(self):
        a = as_rng(7).random(5)
        b = as_rng(7).random(5)
        np.testing.assert_array_equal(a, b)

    def test_as_rng_passthrough_generator(self):
        g = np.random.default_rng(1)
        assert as_rng(g) is g

    def test_as_rng_none_gives_generator(self):
        assert isinstance(as_rng(None), np.random.Generator)

    def test_child_rng_deterministic(self):
        a = child_rng(42, "drift", 3).random(4)
        b = child_rng(42, "drift", 3).random(4)
        np.testing.assert_array_equal(a, b)

    def test_child_rng_keys_independent(self):
        a = child_rng(42, "drift").random(100)
        b = child_rng(42, "exec").random(100)
        assert not np.allclose(a, b)

    def test_child_rng_different_parents_differ(self):
        a = child_rng(1, "x").random(50)
        b = child_rng(2, "x").random(50)
        assert not np.allclose(a, b)

    def test_child_rng_from_generator_spawns(self):
        g = np.random.default_rng(0)
        c = child_rng(g, "anything")
        assert isinstance(c, np.random.Generator)
        assert c is not g

    def test_spawn_many_count_and_independence(self):
        streams = spawn_many(9, "qubit", 5)
        assert len(streams) == 5
        draws = [s.random() for s in streams]
        assert len(set(round(d, 12) for d in draws)) == 5


class TestUnits:
    def test_time_constants(self):
        assert MINUTE == 60.0
        assert HOUR == 3600.0
        assert DAY == 86400.0

    def test_format_si_kbit(self):
        assert format_si(533.3e3, "bit/s") == "533 kbit/s"

    def test_format_si_zero(self):
        assert format_si(0.0, "W") == "0 W"

    def test_format_si_small(self):
        out = format_si(2e-6, "T")
        assert "µT" in out

    def test_format_duration_days_hours(self):
        assert format_duration(2.5 * DAY) == "2d 12h"

    def test_format_duration_minutes(self):
        assert format_duration(40 * MINUTE) == "40m"

    def test_format_duration_negative(self):
        assert format_duration(-HOUR).startswith("-")

    def test_dbm_roundtrip(self):
        for dbm in (-30.0, 0.0, 10.0):
            assert math.isclose(watt_to_dbm(dbm_to_watt(dbm)), dbm, abs_tol=1e-9)

    def test_watt_to_dbm_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            watt_to_dbm(0.0)


class TestValidation:
    def test_probability_bounds(self):
        assert check_probability(0.0) == 0.0
        assert check_probability(1.0) == 1.0
        with pytest.raises(ValueError):
            check_probability(1.0001)
        with pytest.raises(ValueError):
            check_probability(-0.1)

    def test_positive_strict(self):
        assert check_positive(2.5) == 2.5
        with pytest.raises(ValueError):
            check_positive(0.0)

    def test_positive_nonstrict_allows_zero(self):
        assert check_positive(0.0, strict=False) == 0.0
        with pytest.raises(ValueError):
            check_positive(-1.0, strict=False)

    def test_index(self):
        assert check_index(3, 5) == 3
        with pytest.raises(IndexError):
            check_index(5, 5)
        with pytest.raises(IndexError):
            check_index(-1, 5)

    def test_distinct(self):
        check_distinct((0, 1, 2))
        with pytest.raises(ValueError):
            check_distinct((0, 1, 0))
