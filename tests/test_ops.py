"""Tests for the operations simulation and onboarding model."""

import numpy as np
import pytest

from repro.errors import ReproError
from repro.ops import (
    OnboardingProgram,
    OperationsConfig,
    OperationsSimulator,
    UserProfile,
)
from repro.ops.onboarding import FAQ_CATEGORIES, default_cohort
from repro.qpu import QPUDevice
from repro.utils.units import HOUR


class TestOperationsSimulator:
    def test_short_run_produces_daily_records(self):
        sim = OperationsSimulator(QPUDevice(seed=1), OperationsConfig(duration_days=7))
        result = sim.run()
        assert len(result.days) == 7
        series = result.fig4_series()
        assert series["day"].shape == (7,)

    def test_fidelities_stay_in_band(self):
        """The Figure 4 claim: consistent fidelities over time."""
        sim = OperationsSimulator(QPUDevice(seed=2), OperationsConfig(duration_days=21))
        result = sim.run()
        series = result.fig4_series()
        assert series["prx_fidelity"].min() > 0.99
        assert series["cz_fidelity"].min() > 0.95
        assert series["readout_fidelity"].min() > 0.90

    def test_fidelity_ordering_matches_paper(self):
        """Fig 4 ordering: 1q ≥ CZ and 1q ≥ readout on average."""
        result = OperationsSimulator(
            QPUDevice(seed=3), OperationsConfig(duration_days=14)
        ).run()
        s = result.summary()
        assert s["mean_prx_fidelity"] > s["mean_cz_fidelity"]
        assert s["mean_prx_fidelity"] > s["mean_readout_fidelity"]

    def test_unattended_operation(self):
        result = OperationsSimulator(
            QPUDevice(seed=4), OperationsConfig(duration_days=10)
        ).run()
        assert result.human_interventions == 0
        assert result.unattended_days() == 10
        assert result.online_fraction == pytest.approx(1.0)

    def test_calibrations_happen(self):
        result = OperationsSimulator(
            QPUDevice(seed=5), OperationsConfig(duration_days=14)
        ).run()
        s = result.summary()
        assert s["quick_calibrations"] + s["full_calibrations"] > 0

    def test_nightly_window_restricts_calibration_times(self):
        cfg = OperationsConfig(duration_days=10, calibration_windows="nightly")
        sim = OperationsSimulator(QPUDevice(seed=6), cfg)
        result = sim.run()
        lo, hi = cfg.nightly_window
        for event in result.calibration_events:
            hour_of_day = (event.timestamp % (24 * 3600.0)) / 3600.0
            assert lo <= hour_of_day < hi

    def test_no_windows_means_no_calibration(self):
        cfg = OperationsConfig(duration_days=10, calibration_windows="none")
        result = OperationsSimulator(QPUDevice(seed=7), cfg).run()
        assert not result.calibration_events

    def test_uncalibrated_device_degrades(self):
        """Without calibration windows, CZ fidelity decays — the negative
        control for the Figure 4 experiment."""
        managed = OperationsSimulator(
            QPUDevice(seed=8), OperationsConfig(duration_days=14)
        ).run()
        unmanaged = OperationsSimulator(
            QPUDevice(seed=8), OperationsConfig(duration_days=14, calibration_windows="none")
        ).run()
        assert (
            unmanaged.summary()["min_cz_fidelity"]
            < managed.summary()["min_cz_fidelity"]
        )

    def test_workload_jobs_executed(self):
        cfg = OperationsConfig(
            duration_days=2, workload_jobs_per_day=3, workload_ghz_size=3, workload_shots=32
        )
        result = OperationsSimulator(QPUDevice(seed=9), cfg).run()
        assert result.jobs_executed >= 4

    def test_telemetry_populated(self):
        result = OperationsSimulator(
            QPUDevice(seed=10), OperationsConfig(duration_days=3)
        ).run()
        assert result.store.num_points() > 1000

    def test_invalid_config_rejected(self):
        with pytest.raises(ReproError):
            OperationsConfig(duration_days=0)
        with pytest.raises(ReproError):
            OperationsConfig(calibration_windows="weekends")


class TestOnboarding:
    def test_structured_beats_unstructured(self):
        """Lesson 4: structured onboarding converts access to output."""
        structured = OnboardingProgram(
            default_cohort(12, rng=1), structured=True, days=90, rng=1
        ).run()
        unstructured = OnboardingProgram(
            default_cohort(12, rng=1), structured=False, days=90, rng=1
        ).run()
        assert (
            structured.mean_time_to_first_success
            <= unstructured.mean_time_to_first_success
        )
        assert structured.users_reached_create >= unstructured.users_reached_create
        assert structured.publications >= unstructured.publications

    def test_faq_categories_match_paper(self):
        assert "Getting Started" in FAQ_CATEGORIES
        assert "Budgeting" in FAQ_CATEGORIES
        assert len(FAQ_CATEGORIES) == 6

    def test_tickets_categorized(self):
        report = OnboardingProgram(default_cohort(10, rng=2), days=60, rng=2).run()
        assert set(report.tickets_by_category) == set(FAQ_CATEGORIES)
        assert sum(report.tickets_by_category.values()) == report.total_tickets

    def test_empty_cohort_rejected(self):
        with pytest.raises(ReproError):
            OnboardingProgram([], rng=0)

    def test_unknown_background_rejected(self):
        with pytest.raises(ReproError):
            UserProfile(name="x", background="astrologer")

    def test_deterministic(self):
        a = OnboardingProgram(default_cohort(8, rng=3), days=30, rng=3).run()
        b = OnboardingProgram(default_cohort(8, rng=3), days=30, rng=3).run()
        assert a.mean_time_to_first_success == b.mean_time_to_first_success
        assert a.total_tickets == b.total_tickets

    def test_cohort_mixes_backgrounds(self):
        cohort = default_cohort(10)
        backgrounds = {u.background for u in cohort}
        assert backgrounds == {"quantum_expert", "hpc_practitioner"}


class TestOperationsWithOutages:
    """Section 3.5 integrated into the operations horizon."""

    def _run(self, outage_minutes, redundant, days=14):
        from repro.facility import FacilityConfig, OutageScenario, OutageType
        from repro.utils.units import MINUTE

        cfg = OperationsConfig(
            duration_days=days,
            outages={
                5: OutageScenario(
                    OutageType.COOLING_WATER_OVERTEMP, outage_minutes * MINUTE
                )
            },
            facility=FacilityConfig(
                ups_present=redundant, redundant_cooling=redundant
            ),
        )
        return OperationsSimulator(QPUDevice(seed=50), cfg).run()

    def test_redundant_facility_no_downtime(self):
        result = self._run(45, redundant=True)
        assert result.online_fraction == pytest.approx(1.0)
        assert result.outage_reports[0][1].absorbed_by_redundancy

    def test_bare_facility_multi_day_downtime(self):
        result = self._run(45, redundant=False)
        assert result.online_fraction < 0.9
        day, report = result.outage_reports[0]
        assert day == 5
        assert not report.calibration_survived
        assert report.total_downtime > 2 * 24 * 3600

    def test_device_returns_calibrated_after_recovery(self):
        result = self._run(45, redundant=False, days=14)
        # after recovery the final days show restored CZ fidelity
        final = result.days[-1]
        assert final.median_cz_fidelity > 0.97

    def test_outage_day_validated(self):
        from repro.errors import ReproError
        from repro.facility import OutageScenario, OutageType

        with pytest.raises(ReproError):
            OperationsConfig(
                duration_days=5,
                outages={9: OutageScenario(OutageType.POWER_LOSS, 60.0)},
            )
