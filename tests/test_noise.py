"""Tests for the stochastic noise model."""

import numpy as np
import pytest

from repro.errors import NoiseModelError
from repro.simulator.noise import (
    ErrorTerm,
    NoiseModel,
    QuantumError,
    ReadoutError,
    depolarizing_error,
    pauli_error,
    thermal_relaxation_error,
)


class TestErrorTerm:
    def test_invalid_kind(self):
        with pytest.raises(NoiseModelError):
            ErrorTerm("flip", 0.1)

    def test_invalid_pauli(self):
        with pytest.raises(NoiseModelError):
            ErrorTerm("pauli", 0.1, pauli="AB")

    def test_probability_validated(self):
        with pytest.raises(ValueError):
            ErrorTerm("pauli", 1.5, pauli="X")


class TestQuantumError:
    def test_total_probability(self):
        err = pauli_error([("X", 0.01), ("Z", 0.02)])
        assert err.total_probability == pytest.approx(0.03)

    def test_over_unity_rejected(self):
        with pytest.raises(NoiseModelError):
            QuantumError([ErrorTerm("pauli", 0.6, pauli="X"), ErrorTerm("pauli", 0.5, pauli="Z")])

    def test_sample_many_statistics(self):
        err = pauli_error([("X", 0.2)])
        draws = err.sample_many(50_000, rng=np.random.default_rng(0))
        rate = (draws >= 0).mean()
        assert abs(rate - 0.2) < 0.01

    def test_sample_many_term_indices(self):
        err = pauli_error([("X", 0.5), ("Z", 0.5)])
        draws = err.sample_many(1000, rng=np.random.default_rng(1))
        assert set(np.unique(draws)) <= {0, 1}

    def test_compose_concatenates(self):
        a = pauli_error([("X", 0.01)])
        b = pauli_error([("Z", 0.02)])
        c = a.compose(b)
        assert len(c.terms) == 2
        assert c.total_probability == pytest.approx(0.03)

    def test_scaled(self):
        err = pauli_error([("X", 0.1)]).scaled(2.0)
        assert err.total_probability == pytest.approx(0.2)

    def test_identity_terms_dropped(self):
        err = pauli_error([("I", 0.5), ("X", 0.1)])
        assert err.total_probability == pytest.approx(0.1)


class TestConstructors:
    def test_depolarizing_split(self):
        err = depolarizing_error(0.03, 1)
        assert len(err.terms) == 3
        for t in err.terms:
            assert t.probability == pytest.approx(0.01)

    def test_depolarizing_two_qubit(self):
        err = depolarizing_error(0.15, 2)
        assert len(err.terms) == 15
        assert err.total_probability == pytest.approx(0.15)

    def test_thermal_relaxation_has_reset_and_z(self):
        err = thermal_relaxation_error(40e-6, 30e-6, 1e-6)
        kinds = {t.kind for t in err.terms}
        assert kinds == {"reset", "pauli"}

    def test_thermal_relaxation_operand_padding(self):
        err = thermal_relaxation_error(40e-6, 30e-6, 1e-6, operand=1)
        for t in err.terms:
            if t.kind == "pauli":
                assert t.pauli.startswith("I")
            else:
                assert t.reset_operand == 1


class TestReadoutError:
    def test_fidelity(self):
        ro = ReadoutError(0.02, 0.04)
        assert ro.fidelity == pytest.approx(0.97)

    def test_confusion_matrix_stochastic(self):
        m = ReadoutError(0.1, 0.2).confusion_matrix()
        np.testing.assert_allclose(m.sum(axis=0), [1.0, 1.0])

    def test_apply_to_bits_statistics(self):
        ro = ReadoutError(0.1, 0.3)
        rng = np.random.default_rng(2)
        zeros = np.zeros(50_000, dtype=np.uint8)
        ones = np.ones(50_000, dtype=np.uint8)
        assert abs(ro.apply_to_bits(zeros, rng).mean() - 0.1) < 0.01
        assert abs(1.0 - ro.apply_to_bits(ones, rng).mean() - 0.3) < 0.01

    def test_perfect_readout_no_flips(self):
        ro = ReadoutError(0.0, 0.0)
        bits = np.array([0, 1, 1, 0], dtype=np.uint8)
        np.testing.assert_array_equal(ro.apply_to_bits(bits, np.random.default_rng(0)), bits)


class TestNoiseModel:
    def test_local_overrides_default(self):
        nm = NoiseModel()
        default = pauli_error([("X", 0.01)])
        local = pauli_error([("Z", 0.05)])
        nm.add_gate_error(default, "prx")
        nm.add_gate_error(local, "prx", [3])
        assert nm.error_for("prx", [3]).terms[0].pauli == "Z"
        assert nm.error_for("prx", [1]).terms[0].pauli == "X"

    def test_symmetric_two_qubit_lookup(self):
        nm = NoiseModel()
        nm.add_gate_error(depolarizing_error(0.01, 2), "cz", [2, 5])
        assert nm.error_for("cz", [5, 2]) is not None

    def test_missing_returns_none(self):
        assert NoiseModel().error_for("cz", [0, 1]) is None

    def test_double_add_composes(self):
        nm = NoiseModel()
        nm.add_gate_error(pauli_error([("X", 0.01)]), "prx", [0])
        nm.add_gate_error(pauli_error([("Z", 0.01)]), "prx", [0])
        assert len(nm.error_for("prx", [0]).terms) == 2

    def test_readout_registration(self):
        nm = NoiseModel()
        nm.add_readout_error(ReadoutError(0.01, 0.02), 4)
        assert nm.readout_for(4).fidelity == pytest.approx(0.985)
        assert nm.readout_for(3) is None

    def test_is_trivial(self):
        nm = NoiseModel()
        assert nm.is_trivial()
        nm.add_gate_error(pauli_error([("X", 0.01)]), "prx")
        assert not nm.is_trivial()

    def test_noisy_gates(self):
        nm = NoiseModel()
        nm.add_gate_error(pauli_error([("X", 0.01)]), "prx")
        nm.add_gate_error(depolarizing_error(0.01, 2), "cz", [0, 1])
        assert nm.noisy_gates == frozenset({"prx", "cz"})
