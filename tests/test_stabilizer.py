"""Stabilizer tableau engine: correctness, Clifford detection, dispatch.

Three layers of guarantees are pinned here:

1. **State-level equivalence** — tableau probabilities and Pauli
   expectations match the dense engine on random Clifford circuits.
2. **Bit-exact sampling** — for seeded Clifford workloads, counts from
   ``engine_mode("stabilizer")`` equal counts from the dense engine
   *exactly* (same RNG stream, same CDF inversion), including under
   Pauli noise, reset-type (thermal) noise, readout error, and the
   per-shot mid-circuit path.
3. **Dispatch** — the Clifford detector routes the right circuits, the
   default mode auto-engages beyond the dense qubit limit, and
   non-Clifford circuits fall back to the state vector.
"""

import math

import numpy as np
import pytest

from repro.circuits import (
    QuantumCircuit,
    clifford_segments,
    ghz_circuit,
    is_clifford_circuit,
)
from repro.circuits.circuit import Instruction
from repro.circuits.dag import instruction_is_clifford
from repro.circuits.gates import clifford_primitives, is_clifford
from repro.circuits.parameters import Parameter
from repro.errors import SimulationError
from repro.hybrid import (
    exact_expectation,
    expectation_stabilizer,
    expectation_statevector,
    transverse_field_ising,
)
from repro.simulator import (
    CosetSupport,
    NoiseModel,
    StateVector,
    Tableau,
    depolarizing_error,
    engine_mode,
    ghz_tableau,
    sample_counts,
    simulate_statevector,
    simulate_tableau,
)
from repro.simulator.noise import ReadoutError, thermal_relaxation_error
from repro.simulator.statevector import ghz_state

HALF_PI = math.pi / 2.0

CLIFFORD_1Q = ["h", "s", "sdg", "x", "y", "z", "sx"]
CLIFFORD_2Q = ["cx", "cz", "swap", "iswap"]
CLIFFORD_ROTATIONS = ["rx", "ry", "rz", "p"]


def random_clifford_circuit(num_qubits, depth, rng, *, measure=False):
    """A random circuit drawn from the full Clifford registry."""
    qc = QuantumCircuit(num_qubits, name=f"cliff{num_qubits}x{depth}")
    for _ in range(depth):
        roll = rng.random()
        if num_qubits >= 2 and roll < 0.35:
            a = int(rng.integers(num_qubits))
            b = int(rng.integers(num_qubits - 1))
            b += b >= a
            qc.append(str(rng.choice(CLIFFORD_2Q)), [a, b])
        elif roll < 0.6:
            qc.append(str(rng.choice(CLIFFORD_1Q)), [int(rng.integers(num_qubits))])
        elif roll < 0.8:
            k = int(rng.integers(4))
            qc.append(
                str(rng.choice(CLIFFORD_ROTATIONS)),
                [int(rng.integers(num_qubits))],
                [k * HALF_PI],
            )
        elif num_qubits >= 2 and roll < 0.9:
            a = int(rng.integers(num_qubits))
            b = int(rng.integers(num_qubits - 1))
            b += b >= a
            k = int(rng.integers(4))
            qc.append("rzz", [a, b], [k * HALF_PI])
        else:
            kt, kp = int(rng.integers(4)), int(rng.integers(4))
            qc.append(
                "prx", [int(rng.integers(num_qubits))], [kt * HALF_PI, kp * HALF_PI]
            )
    if measure:
        qc.measure_all()
    return qc


# ---------------------------------------------------------------------------
# Clifford detector
# ---------------------------------------------------------------------------


class TestCliffordDetector:
    def test_named_gates_are_clifford(self):
        for name in CLIFFORD_1Q + CLIFFORD_2Q + ["id"]:
            assert is_clifford(name), name

    def test_non_clifford_gates_rejected(self):
        assert not is_clifford("t")
        assert not is_clifford("tdg")
        assert not is_clifford("rx", [0.3])
        assert not is_clifford("rz", [math.pi / 3])
        assert not is_clifford("cp", [HALF_PI])  # controlled-S is not Clifford
        assert not is_clifford("measure")

    def test_malformed_calls_rejected_not_crashed(self):
        # wrong parameter counts and unknown names answer False/None
        assert not is_clifford("rz")  # missing angle
        assert clifford_primitives("p") is None
        assert not is_clifford("h", [0.3])  # spurious angle
        assert not is_clifford("no-such-gate")
        assert not is_clifford("delay", [1e-6])

    def test_registry_set_matches_decomposition_table(self):
        from repro.circuits.gates import CLIFFORD_GATES, _FIXED_CLIFFORD_PRIMS

        assert CLIFFORD_GATES == frozenset(_FIXED_CLIFFORD_PRIMS)
        for name in CLIFFORD_GATES:
            assert is_clifford(name), name

    def test_quarter_turn_rotations_detected(self):
        for name in CLIFFORD_ROTATIONS:
            for k in range(-4, 8):
                assert is_clifford(name, [k * HALF_PI]), (name, k)
        assert is_clifford("cp", [math.pi])
        assert is_clifford("rzz", [3 * HALF_PI])
        assert is_clifford("u", [HALF_PI, math.pi, -HALF_PI])
        assert not is_clifford("u", [HALF_PI, 0.4, 0.0])

    def test_primitive_decompositions_match_unitaries(self):
        """Every registry decomposition must equal its gate's unitary up
        to global phase (checked densely on 2 qubits)."""
        from repro.circuits.gates import spec

        cases = [
            ("sx", []), ("iswap", []), ("rx", [HALF_PI]), ("rx", [math.pi]),
            ("ry", [3 * HALF_PI]), ("rz", [HALF_PI]), ("p", [3 * HALF_PI]),
            ("prx", [HALF_PI, math.pi]), ("u", [math.pi, HALF_PI, HALF_PI]),
            ("cp", [math.pi]), ("rzz", [HALF_PI]), ("rzz", [math.pi]),
            ("rzz", [3 * HALF_PI]),
        ]
        for name, params in cases:
            arity = spec(name).num_qubits
            prims = clifford_primitives(name, params)
            assert prims is not None, (name, params)
            # build both full unitaries column by column and compare
            dim = 4
            u_ref = np.zeros((dim, dim), dtype=complex)
            u_new = np.zeros((dim, dim), dtype=complex)
            for col in range(dim):
                basis = np.zeros(dim, dtype=complex)
                basis[col] = 1.0
                sv = StateVector(2, data=basis)
                sv.apply_matrix(spec(name).matrix(params), list(range(arity)))
                u_ref[:, col] = sv.data
                sv = StateVector(2, data=basis)
                for prim, slots in prims:
                    sv.apply_gate(prim, list(slots))
                u_new[:, col] = sv.data
            # strip global phase
            idx = np.unravel_index(np.argmax(np.abs(u_ref)), u_ref.shape)
            phase = u_new[idx] / u_ref[idx]
            assert abs(abs(phase) - 1.0) < 1e-9, (name, params)
            assert np.allclose(u_new, phase * u_ref, atol=1e-9), (name, params)

    def test_symbolic_parameters_are_not_clifford(self):
        theta = Parameter("θ")
        qc = QuantumCircuit(1)
        qc.rz(theta, 0)
        assert not is_clifford_circuit(qc)

    def test_directives_are_engine_neutral(self):
        qc = QuantumCircuit(2)
        qc.h(0)
        qc.barrier()
        qc.delay(1e-6, 1)
        qc.cx(0, 1)
        qc.measure_all()
        assert is_clifford_circuit(qc)
        assert instruction_is_clifford(Instruction("measure", (0,), clbits=(0,)))

    def test_random_clifford_circuits_detected(self):
        rng = np.random.default_rng(11)
        for _ in range(25):
            n = int(rng.integers(1, 7))
            qc = random_clifford_circuit(n, int(rng.integers(5, 40)), rng)
            assert is_clifford_circuit(qc)

    def test_single_t_gate_breaks_detection(self):
        rng = np.random.default_rng(3)
        qc = random_clifford_circuit(4, 20, rng)
        qc.t(2)
        assert not is_clifford_circuit(qc)

    def test_clifford_segments_partition(self):
        qc = QuantumCircuit(2)
        qc.h(0)
        qc.cx(0, 1)
        qc.t(0)
        qc.rz(0.3, 1)
        qc.barrier()
        qc.s(0)
        qc.measure_all()
        segments = clifford_segments(qc)
        # runs cover the whole circuit, in order, alternating flags
        assert segments[0] == (0, 2, True)
        assert segments[1] == (2, 5, False)  # barrier attaches to the open run
        assert segments[2][0] == 5 and segments[2][2] is True
        assert segments[-1][1] == len(qc)
        covered = sum(stop - start for start, stop, _ in segments)
        assert covered == len(qc)

    def test_clifford_segments_whole_circuit(self):
        qc = ghz_circuit(5)
        assert clifford_segments(qc) == [(0, len(qc), True)]

    def test_clifford_segments_leading_directive_joins_first_run(self):
        qc = QuantumCircuit(2)
        qc.barrier()
        qc.t(0)
        qc.t(1)
        assert clifford_segments(qc) == [(0, 3, False)]

    def test_clifford_segments_directive_only_circuit(self):
        qc = QuantumCircuit(2)
        qc.barrier()
        qc.measure_all()
        assert clifford_segments(qc) == [(0, 3, True)]
        assert clifford_segments(QuantumCircuit(1)) == []


# ---------------------------------------------------------------------------
# tableau state correctness
# ---------------------------------------------------------------------------


class TestTableauState:
    def test_initial_state(self):
        tab = Tableau(3)
        probs = tab.probabilities()
        assert probs[0] == 1.0 and probs[1:].sum() == 0.0

    def test_ghz_tableau_matches_dense(self):
        for n in (2, 3, 6):
            tab = ghz_tableau(n)
            assert np.allclose(tab.probabilities(), ghz_state(n).probabilities())
            assert tab.expectation_pauli("X" * n, range(n)) == 1.0
            assert tab.expectation_z([0, 1]) == 1.0
            assert tab.expectation_z([0]) == 0.0

    def test_random_clifford_probabilities_match_dense(self):
        rng = np.random.default_rng(21)
        for trial in range(20):
            n = int(rng.integers(1, 7))
            qc = random_clifford_circuit(n, 35, rng)
            tab = simulate_tableau(qc)
            sv = simulate_statevector(qc)
            assert np.allclose(
                tab.probabilities(), sv.probabilities(), atol=1e-9
            ), trial

    def test_random_clifford_expectations_match_dense(self):
        rng = np.random.default_rng(22)
        for trial in range(20):
            n = int(rng.integers(1, 6))
            qc = random_clifford_circuit(n, 25, rng)
            tab = simulate_tableau(qc)
            sv = simulate_statevector(qc)
            for _ in range(6):
                pauli = "".join(rng.choice(list("IXYZ"), size=n))
                got = tab.expectation_pauli(pauli, range(n))
                want = sv.expectation_pauli(pauli, range(n))
                assert got in (-1.0, 0.0, 1.0)
                assert abs(got - want) < 1e-9, (trial, pauli)

    def test_pauli_injection_flips_signs_only(self):
        tab = ghz_tableau(4)
        x_before, z_before = tab.x.copy(), tab.z.copy()
        tab.apply_pauli("XZYI", [0, 1, 2, 3])
        assert np.array_equal(tab.x, x_before)
        assert np.array_equal(tab.z, z_before)

    def test_marginal_probability(self):
        tab = ghz_tableau(3)
        assert tab.marginal_probability_one(0) == 0.5
        tab2 = Tableau(2).apply("x", [1])
        assert tab2.marginal_probability_one(1) == 1.0
        assert tab2.marginal_probability_one(0) == 0.0

    def test_measure_collapses_ghz(self):
        rng = np.random.default_rng(5)
        tab = ghz_tableau(4)
        first = tab.measure(0, rng)
        # all remaining qubits are now deterministic and equal
        for q in range(1, 4):
            assert tab.marginal_probability_one(q) == float(first)

    def test_collapse_impossible_outcome_raises(self):
        tab = Tableau(1)  # |0⟩
        with pytest.raises(SimulationError):
            tab.collapse(0, 1)

    def test_reset(self):
        rng = np.random.default_rng(9)
        tab = ghz_tableau(2)
        tab.reset(0, rng)
        assert tab.marginal_probability_one(0) == 0.0

    def test_non_clifford_instruction_raises(self):
        tab = Tableau(1)
        with pytest.raises(SimulationError):
            tab.apply("t", [0])
        with pytest.raises(SimulationError):
            tab.apply("rz", [0], [0.3])
        with pytest.raises(SimulationError):
            tab.apply("rz", [0])  # missing angle is malformed, not Clifford
        with pytest.raises(SimulationError):
            tab.apply_instruction(Instruction("rz", (0,), (0.3,)))

    def test_apply_forwards_rotation_params(self):
        tab = Tableau(1).apply("h", [0]).apply("rz", [0], [HALF_PI])
        ref = Tableau(1).apply("h", [0]).apply("s", [0])
        assert np.array_equal(tab.x, ref.x)
        assert np.array_equal(tab.z, ref.z)
        assert np.array_equal(tab.r, ref.r)

    def test_wide_states(self):
        tab = ghz_tableau(150)
        assert tab.expectation_z([0, 149]) == 1.0
        assert tab.marginal_probability_one(75) == 0.5
        bits = tab.sample(64, np.random.default_rng(0))
        assert bits.shape == (64, 150)
        # every shot is all-zeros or all-ones
        assert np.all((bits.sum(axis=1) == 0) | (bits.sum(axis=1) == 150))


# ---------------------------------------------------------------------------
# coset sampling
# ---------------------------------------------------------------------------


class TestCosetSampling:
    def test_sample_matches_dense_bits_exactly(self):
        rng = np.random.default_rng(31)
        for trial in range(15):
            n = int(rng.integers(1, 7))
            qc = random_clifford_circuit(n, 30, rng)
            tab = simulate_tableau(qc)
            sv = simulate_statevector(qc)
            seed = int(rng.integers(1 << 30))
            got = tab.sample(200, np.random.default_rng(seed))
            want = sv.sample(200, np.random.default_rng(seed))
            assert np.array_equal(got, want), trial

    def test_shared_support_equals_fresh(self):
        rng = np.random.default_rng(32)
        qc = ghz_circuit(6, measure=False)
        clean = simulate_tableau(qc)
        support = CosetSupport(clean)
        for _ in range(10):
            noisy = simulate_tableau(qc)
            pauli = "".join(rng.choice(list("IXYZ"), size=6))
            noisy.apply_pauli(pauli, range(6))
            seed = int(rng.integers(1 << 30))
            shared = noisy.sample(50, np.random.default_rng(seed), support=support)
            fresh = noisy.sample(50, np.random.default_rng(seed))
            assert np.array_equal(shared, fresh), pauli

    def test_support_basis_invariants(self):
        """The sorted-coset mapping needs a reduced descending-pivot
        basis and an offset clear of every pivot bit — pin both."""
        rng = np.random.default_rng(33)
        for trial in range(20):
            n = int(rng.integers(2, 8))
            tab = simulate_tableau(random_clifford_circuit(n, 30, rng))
            support = CosetSupport(tab)
            pivots = support._basis_pivots
            assert np.all(np.diff(pivots) < 0) or pivots.size <= 1
            for i, vec in enumerate(support.basis):
                hits = np.nonzero(vec)[0]
                assert hits[-1] == pivots[i]  # top bit is the pivot
                # pivot bits of all other vectors are clear
                others = np.delete(np.arange(support.dimension), i)
                assert not support.basis[others][:, pivots[i]].any()
            c = support.offset(tab.r[n:])
            if support.dimension:
                assert not c[pivots].any()

    def test_deterministic_coset_consumes_stream(self):
        """k = 0 still burns one uniform per shot (dense-engine parity)."""
        tab = Tableau(2).apply("x", [0])
        rng = np.random.default_rng(0)
        tab.sample(10, rng)
        ref = np.random.default_rng(0)
        ref.random(10)
        assert rng.random() == ref.random()


# ---------------------------------------------------------------------------
# end-to-end sampler dispatch: bit-exact seeded counts
# ---------------------------------------------------------------------------


def _ghz_noise(with_readout=False):
    nm = NoiseModel()
    nm.add_gate_error(depolarizing_error(0.01, 2), "cx")
    nm.add_gate_error(depolarizing_error(0.005, 1), "h")
    if with_readout:
        nm.add_readout_error(ReadoutError(0.02, 0.03), 0)
        nm.add_readout_error(ReadoutError(0.01, 0.04), 1)
    return nm


class TestSamplerDispatch:
    def test_grouped_counts_bit_exact(self):
        for n in (2, 6, 12):
            qc = ghz_circuit(n)
            for seed in (0, 7):
                with engine_mode("fast"):
                    dense = sample_counts(qc, 384, noise=_ghz_noise(True), rng=seed)
                with engine_mode("stabilizer"):
                    stab = sample_counts(qc, 384, noise=_ghz_noise(True), rng=seed)
                assert dense.to_dict() == stab.to_dict(), (n, seed)

    def test_random_clifford_counts_bit_exact(self):
        rng = np.random.default_rng(41)
        nm = NoiseModel()
        nm.add_gate_error(depolarizing_error(0.02, 1), "h")
        nm.add_gate_error(depolarizing_error(0.02, 2), "cx")
        nm.add_gate_error(depolarizing_error(0.02, 2), "cz")
        for trial in range(8):
            n = int(rng.integers(2, 7))
            qc = random_clifford_circuit(n, 25, rng, measure=True)
            seed = int(rng.integers(1 << 30))
            with engine_mode("fast"):
                dense = sample_counts(qc, 256, noise=nm, rng=seed)
            with engine_mode("stabilizer"):
                stab = sample_counts(qc, 256, noise=nm, rng=seed)
            assert dense.to_dict() == stab.to_dict(), trial

    def test_reset_type_noise_bit_exact(self):
        nm = NoiseModel()
        nm.add_gate_error(thermal_relaxation_error(30e-6, 20e-6, 5e-6), "h")
        nm.add_gate_error(
            thermal_relaxation_error(30e-6, 20e-6, 5e-6, operand=1).compose(
                depolarizing_error(0.02, 2)
            ),
            "cx",
        )
        qc = ghz_circuit(8)
        for seed in (1, 5, 9):
            with engine_mode("fast"):
                dense = sample_counts(qc, 320, noise=nm, rng=seed)
            with engine_mode("stabilizer"):
                stab = sample_counts(qc, 320, noise=nm, rng=seed)
            assert dense.to_dict() == stab.to_dict(), seed

    def test_per_shot_path_bit_exact(self):
        qc = QuantumCircuit(3)
        qc.h(0)
        qc.cx(0, 1)
        qc.measure(0)
        qc.x(0)
        qc.reset(2)
        qc.h(2)
        qc.cx(1, 2)
        qc.measure_all()
        nm = NoiseModel()
        nm.add_gate_error(depolarizing_error(0.05, 1), "h")
        for seed in (0, 42):
            with engine_mode("fast"):
                dense = sample_counts(qc, 256, noise=nm, rng=seed)
            with engine_mode("stabilizer"):
                stab = sample_counts(qc, 256, noise=nm, rng=seed)
            assert dense.to_dict() == stab.to_dict(), seed

    def test_noiseless_counts_bit_exact(self):
        qc = ghz_circuit(10)
        with engine_mode("fast"):
            dense = sample_counts(qc, 500, rng=3)
        with engine_mode("stabilizer"):
            stab = sample_counts(qc, 500, rng=3)
        assert dense.to_dict() == stab.to_dict()

    def test_default_mode_keeps_dense_below_limit(self):
        """≤26-qubit circuits keep their historical dense-engine streams
        in the default mode (dispatch only auto-engages beyond it)."""
        from repro.simulator.sampler import _route_to_stabilizer

        assert not _route_to_stabilizer(ghz_circuit(20))
        assert _route_to_stabilizer(ghz_circuit(27))
        with engine_mode("stabilizer"):
            assert _route_to_stabilizer(ghz_circuit(4))

    def test_non_clifford_falls_back_to_dense(self):
        qc = QuantumCircuit(3)
        qc.h(0)
        qc.t(0)
        qc.cx(0, 1)
        qc.rz(0.3, 2)
        qc.measure_all()
        with engine_mode("stabilizer"):
            got = sample_counts(qc, 128, rng=5)
        with engine_mode("fast"):
            want = sample_counts(qc, 128, rng=5)
        assert got.to_dict() == want.to_dict()

    def test_hundred_qubit_ghz_via_default_dispatch(self):
        qc = ghz_circuit(100)
        nm = NoiseModel()
        nm.add_gate_error(depolarizing_error(0.005, 2), "cx")
        counts = sample_counts(qc, 256, noise=nm, rng=7)
        assert counts.shots == 256
        assert counts.num_bits == 100
        # the two ideal outcomes dominate under light noise
        assert counts.ghz_fidelity_estimate() > 0.3

    def test_wide_non_clifford_still_rejected(self):
        qc = ghz_circuit(40, measure=False)
        qc.t(0)
        qc.measure_all()
        with pytest.raises(SimulationError):
            sample_counts(qc, 16, rng=0)

    def test_engine_mode_validation_and_restore(self):
        from repro.simulator import sampler

        with pytest.raises(SimulationError):
            with engine_mode("warp"):
                pass
        with pytest.raises(SimulationError):
            with engine_mode("fast", fast=True):
                pass
        before = (sampler.ENGINE, StateVector.use_fast_kernels)
        with engine_mode("stabilizer"):
            assert sampler.ENGINE == "stabilizer"
            with engine_mode(fast=False):
                assert sampler.ENGINE == "baseline"
                assert not StateVector.use_fast_kernels
            assert sampler.ENGINE == "stabilizer"
        assert (sampler.ENGINE, StateVector.use_fast_kernels) == before


# ---------------------------------------------------------------------------
# hybrid-layer expectations
# ---------------------------------------------------------------------------


class TestHybridExpectations:
    def test_expectation_stabilizer_matches_dense(self):
        rng = np.random.default_rng(51)
        ham = transverse_field_ising(5, j=1.2, h=0.7)
        for _ in range(6):
            qc = random_clifford_circuit(5, 25, rng)
            tab = simulate_tableau(qc)
            sv = simulate_statevector(qc)
            got = expectation_stabilizer(ham, tab)
            want = expectation_statevector(ham, sv)
            assert abs(got - want) < 1e-9

    def test_exact_expectation_dispatches(self):
        ham = transverse_field_ising(4)
        clifford = ghz_circuit(4, measure=False)
        assert abs(
            exact_expectation(ham, clifford)
            - expectation_statevector(ham, simulate_statevector(clifford))
        ) < 1e-9
        non_clifford = QuantumCircuit(4)
        non_clifford.ry(0.3, 0)
        non_clifford.cx(0, 1)
        assert abs(
            exact_expectation(ham, non_clifford)
            - expectation_statevector(ham, simulate_statevector(non_clifford))
        ) < 1e-9

    def test_wide_clifford_expectation(self):
        ham = transverse_field_ising(60)
        qc = ghz_circuit(60, measure=False)
        value = exact_expectation(ham, qc)
        # GHZ: ⟨Z_i Z_{i+1}⟩ = 1 for every bond, ⟨X_i⟩ = 0
        assert abs(value - (-1.0 * 59)) < 1e-9
