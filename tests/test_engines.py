"""Execution-engine registry, routing, and hybrid segment execution.

Four layers of guarantees are pinned here:

1. **Registry/routing** — the engine registry resolves names, and
   :func:`select_engine` routes every mode string to the documented
   backend per circuit (including the new ``hybrid`` / ``auto`` modes).
2. **Conversion boundary** — ``Tableau.to_statevector`` /
   ``coset_amplitudes`` and the sparse amplitude state agree with the
   dense engine at 1e-12 fidelity, including widths where the support
   is sparse but the circuit is wider than the dense limit.
3. **Segment-boundary equivalence** — seeded hybrid-engine counts match
   the dense engine *exactly* for Clifford+T circuits up to 12 qubits,
   through the grouped path, the per-shot (mid-circuit measurement)
   path, and reset-type (thermal) noise.
4. **Facade hygiene** — an invalid ``engine_mode`` raises
   :class:`ValueError` before touching any global, and the legacy
   ``fast=`` bool form deprecation-warns exactly once.
"""

import math
import warnings

import numpy as np
import pytest

from repro.circuits import QuantumCircuit, ghz_circuit
from repro.circuits.dag import CliffordSegment, clifford_segments, segment_summary
from repro.errors import EngineModeError, SimulationError
from repro.hybrid import (
    exact_expectation,
    expectation_sparse,
    expectation_statevector,
    transverse_field_ising,
)
from repro.simulator import (
    DenseEngine,
    HybridSegmentEngine,
    NoiseModel,
    SparseAmplitudes,
    StateVector,
    TableauEngine,
    depolarizing_error,
    engine_mode,
    engine_registry,
    get_engine,
    prepare_engine,
    sample_counts,
    select_engine,
    simulate_statevector,
    simulate_tableau,
)
from repro.simulator.noise import ReadoutError, thermal_relaxation_error
from repro.simulator.statevector import DENSE_QUBIT_LIMIT

from test_stabilizer import random_clifford_circuit

HALF_PI = math.pi / 2.0


def ghz_t_circuit(num_qubits, *, measure=True):
    """GHZ Clifford prefix + T layer — the canonical hybrid workload."""
    qc = ghz_circuit(num_qubits, measure=False, name=f"ghz{num_qubits}+t")
    for q in range(num_qubits):
        qc.t(q)
    if measure:
        qc.measure_all()
    return qc


def clifford_t_circuit(num_qubits, depth, rng, *, measure=True):
    """Random Clifford prefix, then an interleaved non-Clifford tail
    (T / small rotations / more Clifford gates) — exercises sparse
    growth, densification, and post-boundary Clifford gates."""
    qc = random_clifford_circuit(num_qubits, depth, rng)
    qc.t(int(rng.integers(num_qubits)))
    for _ in range(depth // 2):
        roll = rng.random()
        q = int(rng.integers(num_qubits))
        if roll < 0.3:
            qc.t(q)
        elif roll < 0.5:
            qc.rz(float(rng.uniform(-math.pi, math.pi)), q)
        elif roll < 0.7 and num_qubits >= 2:
            q2 = int(rng.integers(num_qubits - 1))
            q2 += q2 >= q
            qc.cx(q, q2)
        else:
            qc.h(q)
    if measure:
        qc.measure_all()
    return qc


def _noise(with_readout=False, thermal=False):
    nm = NoiseModel()
    nm.add_gate_error(depolarizing_error(0.01, 2), "cx")
    if thermal:
        nm.add_gate_error(thermal_relaxation_error(30e-6, 20e-6, 5e-6), "h")
    else:
        nm.add_gate_error(depolarizing_error(0.005, 1), "h")
    if with_readout:
        nm.add_readout_error(ReadoutError(0.02, 0.03), 0)
        nm.add_readout_error(ReadoutError(0.01, 0.04), 1)
    return nm


# ---------------------------------------------------------------------------
# registry and routing
# ---------------------------------------------------------------------------


class TestRegistry:
    def test_builtin_engines_registered(self):
        from repro.simulator import MPSEngine

        registry = engine_registry()
        assert registry["dense"] is DenseEngine
        assert registry["tableau"] is TableauEngine
        assert registry["hybrid"] is HybridSegmentEngine
        assert registry["mps"] is MPSEngine

    def test_get_engine_resolves_and_rejects(self):
        assert get_engine("hybrid") is HybridSegmentEngine
        with pytest.raises(SimulationError):
            get_engine("no-such-backend")

    def test_register_engine_requires_name(self):
        from repro.simulator.engines import register_engine

        class Nameless(DenseEngine):
            name = ""

        with pytest.raises(SimulationError):
            register_engine(Nameless)

    def test_reregistered_backend_serves_dispatch_and_forks(self):
        """Latest registration wins *in routing*, and forks preserve
        the subclass — the advertised backend-swap mechanism."""
        from repro.simulator.engines import register_engine
        from repro.simulator.engines.base import _REGISTRY

        class Instrumented(DenseEngine):
            name = "dense"

        register_engine(Instrumented)
        try:
            cls = select_engine("fast", ghz_circuit(4))
            assert cls is Instrumented
            engine = cls(ghz_circuit(4))
            assert type(engine.fork()) is Instrumented
        finally:
            _REGISTRY["dense"] = DenseEngine
        assert select_engine("fast", ghz_circuit(4)) is DenseEngine


class TestRouting:
    def test_fast_mode_routing(self):
        assert select_engine("fast", ghz_circuit(20)) is DenseEngine
        assert select_engine("fast", ghz_circuit(27)) is TableauEngine
        assert select_engine("fast", ghz_t_circuit(12)) is DenseEngine

    def test_baseline_mode_is_always_dense(self):
        assert select_engine("baseline", ghz_circuit(20)) is DenseEngine
        assert select_engine("baseline", ghz_circuit(4)) is DenseEngine

    def test_stabilizer_mode_routing(self):
        assert select_engine("stabilizer", ghz_circuit(4)) is TableauEngine
        assert select_engine("stabilizer", ghz_t_circuit(4)) is DenseEngine

    def test_hybrid_mode_routing(self):
        # Clifford circuits stay on the pure tableau
        assert select_engine("hybrid", ghz_circuit(8)) is TableauEngine
        # any Clifford prefix routes to segment execution
        assert select_engine("hybrid", ghz_t_circuit(8)) is HybridSegmentEngine
        # no Clifford prefix at all → dense
        qc = QuantumCircuit(2)
        qc.t(0)
        qc.cx(0, 1)
        qc.measure_all()
        assert select_engine("hybrid", qc) is DenseEngine

    def test_auto_mode_routing(self):
        assert select_engine("auto", ghz_circuit(8)) is TableauEngine
        assert select_engine("auto", ghz_t_circuit(8)) is HybridSegmentEngine
        # single-qubit Clifford prefix is not worth a tableau under auto
        qc = QuantumCircuit(2)
        qc.h(0)
        qc.t(0)
        qc.cx(0, 1)
        qc.measure_all()
        assert select_engine("auto", qc) is DenseEngine
        # ... unless the circuit is too wide for the dense engine anyway
        wide = ghz_t_circuit(DENSE_QUBIT_LIMIT + 4)
        assert select_engine("auto", wide) is HybridSegmentEngine

    def test_auto_mode_routing_table(self):
        """One row per backend: the documented ``"auto"`` decisions
        across all five circuit classes."""
        from repro.circuits import brickwork_circuit
        from repro.simulator import MPSEngine

        wide = DENSE_QUBIT_LIMIT + 6

        def all_to_all(n):
            qc = QuantumCircuit(n, name=f"alltoall{n}")
            for q in range(n):
                qc.ry(0.4, q)
            for q in range(n // 2):
                qc.cx(q, n - 1 - q)  # long-range: not line-like
            qc.measure_all()
            return qc

        table = [
            # (label, circuit, expected engine)
            ("clifford", ghz_circuit(wide), TableauEngine),
            ("clifford-prefix", ghz_t_circuit(10), HybridSegmentEngine),
            ("sparse-tail-wide", ghz_t_circuit(wide), HybridSegmentEngine),
            ("low-entanglement-line", brickwork_circuit(wide, 3), MPSEngine),
            ("generic-dense", brickwork_circuit(10, 3), DenseEngine),
            ("wide-non-line-fallback", all_to_all(wide), HybridSegmentEngine),
        ]
        for label, circuit, expected in table:
            assert select_engine("auto", circuit) is expected, label

    def test_unknown_mode_raises(self):
        with pytest.raises(EngineModeError):
            select_engine("warp", ghz_circuit(2))


# ---------------------------------------------------------------------------
# segment metadata
# ---------------------------------------------------------------------------


class TestSegmentMetadata:
    def test_segments_are_named_tuples_with_metadata(self):
        qc = ghz_t_circuit(4)
        segments = clifford_segments(qc)
        assert all(isinstance(s, CliffordSegment) for s in segments)
        prefix = segments[0]
        assert prefix.is_clifford and prefix.start == 0
        assert prefix.size == prefix.stop - prefix.start
        meta = prefix.metadata(qc)
        assert meta["num_gates"] == 4  # h + 3 cx
        assert meta["num_two_qubit_gates"] == 3
        assert meta["qubits"] == (0, 1, 2, 3)

    def test_segment_summary_covers_circuit(self):
        qc = clifford_t_circuit(5, 20, np.random.default_rng(0))
        summary = segment_summary(qc)
        assert sum(m["num_instructions"] for m in summary) == len(qc)
        assert summary == [s.metadata(qc) for s in clifford_segments(qc)]

    def test_tuple_compatibility(self):
        qc = ghz_circuit(5)
        assert clifford_segments(qc) == [(0, len(qc), True)]


# ---------------------------------------------------------------------------
# conversion boundary
# ---------------------------------------------------------------------------


class TestTableauConversion:
    def test_to_statevector_matches_dense(self):
        rng = np.random.default_rng(61)
        for trial in range(25):
            n = int(rng.integers(1, 9))
            qc = random_clifford_circuit(n, 35, rng)
            got = simulate_tableau(qc).to_statevector()
            want = simulate_statevector(qc)
            assert got.fidelity(want) > 1 - 1e-12, trial
            assert abs(got.norm() - 1.0) < 1e-12

    def test_ghz_coset_is_two_elements_at_any_width(self):
        from repro.simulator import ghz_tableau

        indices, amps = ghz_tableau(50).coset_amplitudes()
        assert sorted(indices.tolist()) == [0, (1 << 50) - 1]
        assert np.allclose(np.abs(amps), 1.0 / math.sqrt(2.0))

    def test_sparse_from_tableau_matches_dense(self):
        rng = np.random.default_rng(62)
        for _ in range(10):
            n = int(rng.integers(2, 8))
            qc = random_clifford_circuit(n, 30, rng)
            sparse = SparseAmplitudes.from_tableau(simulate_tableau(qc))
            assert sparse.to_statevector().fidelity(simulate_statevector(qc)) > 1 - 1e-12


class TestSparseAmplitudes:
    def _random_state(self, n, rng):
        tab = simulate_tableau(random_clifford_circuit(n, 25, rng))
        return SparseAmplitudes.from_tableau(tab), tab.to_statevector()

    def test_gate_application_matches_dense(self):
        from repro.circuits.gates import spec

        rng = np.random.default_rng(63)
        gates_1q = ["t", "h", "s", "x", "y", "z", "sx"]
        gates_2q = ["cx", "cz", "swap", "iswap"]
        for trial in range(15):
            n = int(rng.integers(2, 7))
            sparse, dense = self._random_state(n, rng)
            for _ in range(12):
                if rng.random() < 0.5:
                    name = str(rng.choice(gates_1q))
                    qs = [int(rng.integers(n))]
                else:
                    name = str(rng.choice(gates_2q))
                    a = int(rng.integers(n))
                    b = int(rng.integers(n - 1))
                    b += b >= a
                    qs = [a, b]
                m = spec(name).matrix()
                sparse.apply_matrix(m, qs)
                dense.apply_matrix(m, qs)
            assert sparse.nnz <= dense.dim
            assert sparse.to_statevector().fidelity(dense) > 1 - 1e-12, trial

    def test_general_rotation_grows_then_coalesces(self):
        from repro.circuits.gates import ry_matrix

        sparse = SparseAmplitudes(2, np.array([0]), np.array([1.0 + 0j]))
        sparse.apply_matrix(ry_matrix(0.7), [0])
        assert sparse.nnz == 2
        # rotating back must recombine to a single basis state
        sparse.apply_matrix(ry_matrix(-0.7), [0])
        assert sparse.nnz == 1
        assert abs(abs(sparse.amplitudes[0]) - 1.0) < 1e-12

    def test_measure_collapse_reset(self):
        rng = np.random.default_rng(64)
        sparse = SparseAmplitudes.from_tableau(simulate_tableau(ghz_circuit(4, measure=False)))
        outcome = sparse.measure(0, rng)
        for q in range(1, 4):
            assert sparse.marginal_probability_one(q) == pytest.approx(float(outcome))
        sparse.reset(2, rng)
        assert sparse.marginal_probability_one(2) == pytest.approx(0.0)
        with pytest.raises(SimulationError):
            sparse.collapse(2, 1)

    def test_sample_matches_dense_bits_exactly(self):
        rng = np.random.default_rng(65)
        for trial in range(10):
            n = int(rng.integers(2, 7))
            sparse, dense = self._random_state(n, rng)
            seed = int(rng.integers(1 << 30))
            got = sparse.sample(200, np.random.default_rng(seed))
            want = dense.sample(200, np.random.default_rng(seed))
            assert np.array_equal(got, want), trial

    def test_expectation_pauli_matches_dense(self):
        rng = np.random.default_rng(66)
        for trial in range(10):
            n = int(rng.integers(2, 6))
            sparse, dense = self._random_state(n, rng)
            from repro.circuits.gates import spec

            sparse.apply_matrix(spec("t").matrix(), [0])
            dense.apply_matrix(spec("t").matrix(), [0])
            pauli = "".join(rng.choice(list("IXYZ"), size=n))
            got = sparse.expectation_pauli(pauli, range(n))
            want = dense.expectation_pauli(pauli, range(n))
            assert abs(got - want) < 1e-9, (trial, pauli)


# ---------------------------------------------------------------------------
# hybrid segment execution: seeded equivalence with the dense engine
# ---------------------------------------------------------------------------


class TestHybridEquivalence:
    def test_ghz_t_grouped_counts_exact(self):
        for n in (2, 6, 12):
            qc = ghz_t_circuit(n)
            for seed in (0, 7):
                with engine_mode("fast"):
                    dense = sample_counts(qc, 384, noise=_noise(True), rng=seed)
                with engine_mode("hybrid"):
                    hybrid = sample_counts(qc, 384, noise=_noise(True), rng=seed)
                assert dense.to_dict() == hybrid.to_dict(), (n, seed)

    def test_random_clifford_t_counts_exact(self):
        rng = np.random.default_rng(71)
        for trial in range(8):
            n = int(rng.integers(2, 9))
            qc = clifford_t_circuit(n, 20, rng)
            seed = int(rng.integers(1 << 30))
            with engine_mode("fast"):
                dense = sample_counts(qc, 256, noise=_noise(), rng=seed)
            with engine_mode("hybrid"):
                hybrid = sample_counts(qc, 256, noise=_noise(), rng=seed)
            assert dense.to_dict() == hybrid.to_dict(), trial

    def test_reset_type_noise_counts_exact(self):
        qc = ghz_t_circuit(8)
        for seed in (1, 5, 9):
            with engine_mode("fast"):
                dense = sample_counts(qc, 320, noise=_noise(thermal=True), rng=seed)
            with engine_mode("hybrid"):
                hybrid = sample_counts(qc, 320, noise=_noise(thermal=True), rng=seed)
            assert dense.to_dict() == hybrid.to_dict(), seed

    def test_mid_circuit_measurement_counts_exact(self):
        qc = QuantumCircuit(3)
        qc.h(0)
        qc.cx(0, 1)
        qc.measure(0)
        qc.t(1)
        qc.reset(2)
        qc.h(2)
        qc.cx(1, 2)
        qc.t(2)
        qc.measure_all()
        nm = NoiseModel()
        nm.add_gate_error(depolarizing_error(0.05, 1), "h")
        for seed in (0, 42):
            with engine_mode("fast"):
                dense = sample_counts(qc, 256, noise=nm, rng=seed)
            with engine_mode("hybrid"):
                hybrid = sample_counts(qc, 256, noise=nm, rng=seed)
            assert dense.to_dict() == hybrid.to_dict(), seed

    def test_state_fidelity_at_boundary(self):
        rng = np.random.default_rng(72)
        for trial in range(10):
            n = int(rng.integers(2, 11))
            qc = clifford_t_circuit(n, 18, rng, measure=False)
            engine = prepare_engine(qc, "hybrid")
            want = simulate_statevector(qc)
            assert engine.to_dense().fidelity(want) > 1 - 1e-12, trial

    def test_pure_clifford_under_hybrid_matches_stabilizer(self):
        qc = ghz_circuit(10)
        with engine_mode("stabilizer"):
            stab = sample_counts(qc, 500, noise=_noise(), rng=3)
        with engine_mode("hybrid"):
            hybrid = sample_counts(qc, 500, noise=_noise(), rng=3)
        assert stab.to_dict() == hybrid.to_dict()

    def test_auto_mode_matches_fast_counts(self):
        qc = ghz_t_circuit(10)
        with engine_mode("fast"):
            dense = sample_counts(qc, 256, noise=_noise(), rng=9)
        with engine_mode("auto"):
            auto = sample_counts(qc, 256, noise=_noise(), rng=9)
        assert dense.to_dict() == auto.to_dict()

    def test_wide_hybrid_beyond_dense_limit(self):
        """The flagship capability: a Clifford prefix + sparse tail at a
        width the dense engine cannot represent at all."""
        n = DENSE_QUBIT_LIMIT + 6
        qc = ghz_t_circuit(n)
        with engine_mode("fast"):
            with pytest.raises(SimulationError):
                sample_counts(qc, 16, rng=0)
        with engine_mode("hybrid"):
            counts = sample_counts(qc, 256, noise=_noise(), rng=7)
        assert counts.shots == 256
        assert counts.num_bits == n
        assert counts.ghz_fidelity_estimate() > 0.3

    def test_dense_boundary_state_densifies_directly(self):
        """A boundary coset too dense for the sparse regime (uniform
        superposition prefix) converts straight to a StateVector."""
        n = 6
        qc = QuantumCircuit(n)
        for q in range(n):
            qc.h(q)
        qc.t(0)
        engine = prepare_engine(qc, "hybrid")
        assert engine.phase == "dense"
        assert engine.to_dense().fidelity(simulate_statevector(qc)) > 1 - 1e-12

    def test_wide_dense_boundary_fails_fast(self):
        """Beyond the dense limit, a dense boundary coset must raise a
        clear error before enumerating 2^k amplitudes (no MemoryError)."""
        n = DENSE_QUBIT_LIMIT + 4
        qc = QuantumCircuit(n)
        for q in range(n):
            qc.h(q)
        qc.t(0)
        qc.measure_all()
        for mode in ("hybrid", "auto"):
            with engine_mode(mode):
                with pytest.raises(SimulationError, match="coset dimension"):
                    sample_counts(qc, 8, rng=0)

    def test_wide_tableau_to_statevector_fails_fast(self):
        from repro.simulator import ghz_tableau

        with pytest.raises(SimulationError, match="dense engine caps"):
            ghz_tableau(DENSE_QUBIT_LIMIT + 10).to_statevector()

    def test_wide_hybrid_branching_tail_fails_cleanly(self):
        """A branching (H) tail past the dense limit must raise the
        densification error, not thrash."""
        n = DENSE_QUBIT_LIMIT + 2
        qc = ghz_circuit(n, measure=False)
        qc.t(0)
        for q in range(n):
            qc.h(q)
        qc.measure_all()
        with engine_mode("hybrid"):
            with pytest.raises(SimulationError):
                sample_counts(qc, 8, rng=0)


# ---------------------------------------------------------------------------
# expectation routing
# ---------------------------------------------------------------------------


class TestExpectationRouting:
    def test_exact_expectation_hybrid_route_matches_dense(self):
        rng = np.random.default_rng(73)
        ham = transverse_field_ising(6, j=1.1, h=0.6)
        for _ in range(5):
            qc = clifford_t_circuit(6, 15, rng, measure=False)
            got = exact_expectation(ham, qc)
            want = expectation_statevector(ham, simulate_statevector(qc))
            assert abs(got - want) < 1e-9

    def test_expectation_sparse_matches_statevector(self):
        rng = np.random.default_rng(74)
        ham = transverse_field_ising(5, j=0.8, h=1.3)
        qc = ghz_t_circuit(5, measure=False)
        engine = prepare_engine(qc, "hybrid")
        assert engine.phase == "sparse"
        got = expectation_sparse(ham, engine._sparse)
        want = expectation_statevector(ham, simulate_statevector(qc))
        assert abs(got - want) < 1e-9

    def test_wide_sparse_expectation(self):
        n = DENSE_QUBIT_LIMIT + 6
        ham = transverse_field_ising(n)
        qc = ghz_t_circuit(n, measure=False)
        value = exact_expectation(ham, qc)
        # T layers leave Z-basis structure alone: ⟨Z_i Z_{i+1}⟩ = 1, ⟨X_i⟩ = 0
        assert abs(value - (-1.0 * (n - 1))) < 1e-9

    def test_baseline_mode_keeps_wide_clifford_expectation(self):
        """The seed lane retains the historical Clifford-to-tableau
        expectation dispatch: wide Clifford circuits must not raise."""
        n = DENSE_QUBIT_LIMIT + 4
        ham = transverse_field_ising(n)
        qc = ghz_circuit(n, measure=False)
        with engine_mode("baseline"):
            value = exact_expectation(ham, qc)
        assert abs(value - (-1.0 * (n - 1))) < 1e-9


# ---------------------------------------------------------------------------
# engine_mode facade
# ---------------------------------------------------------------------------


class TestEngineModeFacade:
    def test_invalid_mode_raises_value_error_before_mutation(self):
        from repro.simulator import sampler

        before = (
            sampler.ENGINE,
            StateVector.use_fast_kernels,
            sampler.USE_PREFIX_SHARING,
        )
        with pytest.raises(ValueError):
            with engine_mode("warp"):
                pass  # pragma: no cover
        assert (
            sampler.ENGINE,
            StateVector.use_fast_kernels,
            sampler.USE_PREFIX_SHARING,
        ) == before

    def test_conflicting_args_raise_value_error(self):
        with pytest.raises(ValueError):
            with engine_mode("fast", fast=True):
                pass  # pragma: no cover

    def test_unknown_sub_option_kwargs_rejected(self):
        """Hygiene: unrecognized sub-option keywords raise
        EngineModeError before any global mutates (a typo must not run
        the block on silent defaults)."""
        from repro.simulator import sampler

        before = (
            sampler.ENGINE,
            StateVector.use_fast_kernels,
            sampler.USE_PREFIX_SHARING,
        )
        for kwargs in ({"ci": 64}, {"tablea_impl": "packed"}, {"threshold": 0.1}):
            with pytest.raises(EngineModeError, match="sub-option"):
                with engine_mode("fast", **kwargs):
                    pass  # pragma: no cover
        assert (
            sampler.ENGINE,
            StateVector.use_fast_kernels,
            sampler.USE_PREFIX_SHARING,
        ) == before

    def test_sub_options_rejected_for_inapplicable_modes(self):
        """A sub-option the selected mode's routing can never consume is
        an error, not a silent no-op."""
        with pytest.raises(EngineModeError, match="tableau_impl"):
            with engine_mode("baseline", tableau_impl="packed"):
                pass  # pragma: no cover
        with pytest.raises(EngineModeError, match="chi"):
            with engine_mode("stabilizer", chi=8):
                pass  # pragma: no cover

    def test_new_modes_accepted_and_restored(self):
        from repro.simulator import sampler

        before = sampler.ENGINE
        with engine_mode("hybrid"):
            assert sampler.ENGINE == "hybrid"
            assert StateVector.use_fast_kernels
            with engine_mode("auto"):
                assert sampler.ENGINE == "auto"
            assert sampler.ENGINE == "hybrid"
        assert sampler.ENGINE == before

    def test_fast_keyword_deprecation_warns_once(self, monkeypatch):
        from repro.simulator import sampler

        monkeypatch.setattr(sampler, "_FAST_KEYWORD_WARNED", False)
        with pytest.warns(DeprecationWarning, match="engine_mode"):
            with engine_mode(fast=True):
                pass
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            with engine_mode(fast=False):
                pass  # second use stays silent


# ---------------------------------------------------------------------------
# batched multi-shot sampling (CDF inversion)
# ---------------------------------------------------------------------------


class TestBatchedSampling:
    def test_fast_sample_bitwise_matches_choice(self):
        """The vectorized CDF inversion must equal rng.choice exactly —
        outcomes and stream consumption."""
        rng = np.random.default_rng(81)
        for _ in range(10):
            n = int(rng.integers(1, 8))
            qc = clifford_t_circuit(n, 15, rng, measure=False)
            state = simulate_statevector(qc)
            seed = int(rng.integers(1 << 30))
            r_fast = np.random.default_rng(seed)
            r_ref = np.random.default_rng(seed)
            with engine_mode("fast"):
                got = state.sample(137, r_fast)
            probs = state.probabilities()
            probs = probs / probs.sum()
            want_outcomes = r_ref.choice(probs.size, size=137, p=probs)
            qs = np.arange(n, dtype=np.int64)
            want = ((want_outcomes[:, None] >> qs[None, :]) & 1).astype(np.uint8)
            assert np.array_equal(got, want)
            # identical stream position afterwards
            assert r_fast.random() == r_ref.random()

    def test_baseline_sample_still_uses_choice_stream(self):
        state = StateVector(3)
        state.apply_matrix(np.eye(2, dtype=complex), [0])
        with engine_mode("baseline"):
            a = state.sample(50, np.random.default_rng(5))
        with engine_mode("fast"):
            b = state.sample(50, np.random.default_rng(5))
        assert np.array_equal(a, b)
