"""Tests for the synthetic workload generator."""

import numpy as np
import pytest

from repro.errors import SchedulerError
from repro.scheduler import ClusterScheduler, JobState, Partition, Simulation
from repro.scheduler.workload import (
    WorkloadConfig,
    generate_workload,
    submit_workload,
)
from repro.utils.units import DAY, HOUR


class TestGeneration:
    def test_reproducible(self):
        a = generate_workload(DAY, rng=5)
        b = generate_workload(DAY, rng=5)
        assert len(a) == len(b)
        assert all(x.arrival == y.arrival for x, y in zip(a, b))

    def test_arrival_rate_statistics(self):
        cfg = WorkloadConfig(arrival_rate=10.0 / HOUR)
        arrivals = generate_workload(10 * DAY, cfg, rng=1)
        expected = 10.0 * 24 * 10
        assert expected * 0.85 < len(arrivals) < expected * 1.15

    def test_arrivals_sorted_and_in_window(self):
        arrivals = generate_workload(DAY, rng=2)
        times = [a.arrival for a in arrivals]
        assert times == sorted(times)
        assert all(0 <= t < DAY for t in times)

    def test_runtime_capped(self):
        cfg = WorkloadConfig(max_runtime=2 * HOUR, runtime_sigma=2.5)
        arrivals = generate_workload(5 * DAY, cfg, rng=3)
        assert all(a.job.runtime <= 2 * HOUR for a in arrivals)

    def test_walltime_exceeds_runtime(self):
        arrivals = generate_workload(DAY, rng=4)
        classical = [a.job for a in arrivals if not a.job.is_quantum]
        assert all(j.walltime_limit > j.runtime for j in classical)

    def test_quantum_fraction(self):
        cfg = WorkloadConfig(quantum_fraction=0.3)
        arrivals = generate_workload(5 * DAY, cfg, rng=5)
        q = sum(1 for a in arrivals if a.job.is_quantum)
        assert 0.2 < q / len(arrivals) < 0.4
        for a in arrivals:
            if a.job.is_quantum:
                assert a.job.partition == "quantum"
                assert a.job.payload["shots"] == cfg.quantum_shots

    def test_max_nodes_clamp(self):
        arrivals = generate_workload(2 * DAY, rng=6, max_nodes=4)
        assert all(a.job.num_nodes <= 4 for a in arrivals if not a.job.is_quantum)

    def test_invalid_config(self):
        with pytest.raises(SchedulerError):
            WorkloadConfig(arrival_rate=0.0)
        with pytest.raises(SchedulerError):
            WorkloadConfig(quantum_fraction=1.5)


class TestSubmission:
    def test_workload_drives_cluster(self):
        sim = Simulation()
        cluster = ClusterScheduler(sim, [Partition("compute", 16)])
        cfg = WorkloadConfig(arrival_rate=15.0 / HOUR, runtime_median=20 * 60.0)
        arrivals = generate_workload(DAY, cfg, rng=7, max_nodes=16)
        jobs = submit_workload(cluster, arrivals)
        # generous horizon: wide jobs serialize the machine, so the queue
        # drains much more slowly than the arrival window
        sim.run_until(20 * DAY)
        done = sum(1 for j in jobs if j.state is JobState.COMPLETED)
        # walltime factor ≥ 1.2 means no walltime kills: all must finish
        assert done == len(jobs)
        assert cluster.utilization("compute", 20 * DAY) > 0.0

    def test_jobs_not_started_before_arrival(self):
        sim = Simulation()
        cluster = ClusterScheduler(sim, [Partition("compute", 64)])
        arrivals = generate_workload(DAY, rng=8, max_nodes=16)
        submit_workload(cluster, arrivals)
        sim.run_until(2 * DAY)
        for a in arrivals:
            if a.job.started_at is not None:
                assert a.job.started_at >= a.arrival - 1e-9
