"""Documentation smoke checks.

The repo's docs are part of its contract: a top-level README that names
the tier-1 verification command verbatim, an architecture document for
the simulator engine modes, and a non-empty package docstring on every
``src/repro/*`` package so the subsystem map stays self-describing.
These checks parse files statically (no imports), so they cannot be
skewed by interpreter state.
"""

import ast
import pathlib
import re

REPO = pathlib.Path(__file__).resolve().parents[1]
README = REPO / "README.md"
ROADMAP = REPO / "ROADMAP.md"
ARCHITECTURE = REPO / "docs" / "architecture.md"
SRC = REPO / "src" / "repro"


def _tier1_command() -> str:
    """The authoritative tier-1 command, parsed from ROADMAP.md."""
    match = re.search(r"\*\*Tier-1 verify:\*\*\s*`([^`]+)`", ROADMAP.read_text())
    assert match, "ROADMAP.md no longer states the tier-1 command"
    return match.group(1)


def test_readme_exists_and_names_tier1_command():
    assert README.is_file(), "top-level README.md is missing"
    text = README.read_text()
    assert _tier1_command() in text, (
        "README.md must quote the tier-1 test command verbatim "
        f"({_tier1_command()!r})"
    )


def test_readme_documents_bench_workflow():
    text = README.read_text()
    assert "scripts/bench.py" in text
    assert "BENCH_simulator.json" in text


def test_readme_maps_every_package():
    """The subsystem map must mention every src/repro/* package."""
    text = README.read_text()
    packages = sorted(
        p.name for p in SRC.iterdir() if p.is_dir() and (p / "__init__.py").is_file()
    )
    missing = [name for name in packages if f"src/repro/{name}" not in text]
    assert not missing, f"README subsystem map is missing packages: {missing}"


def test_architecture_doc_covers_engine_contract():
    assert ARCHITECTURE.is_file(), "docs/architecture.md is missing"
    text = ARCHITECTURE.read_text()
    for needle in (
        "engine_mode",
        "stabilizer",
        "baseline",
        "BENCH_simulator.json",
        "repro.bench.simulator/v10",
    ):
        assert needle in text, f"architecture doc lost the {needle!r} section"


def test_architecture_doc_covers_engine_registry():
    """The registry section must name the protocol surface, the
    registration hook, every mode string, and the conversion boundary."""
    text = ARCHITECTURE.read_text()
    for needle in (
        "Engine registry",
        "ExecutionEngine",
        "repro.simulator.engines",
        "register_engine",
        "select_engine",
        '"hybrid"',
        '"auto"',
        "to_statevector",
        "coset_amplitudes",
        "hybrid_segment_ghz_t",
    ):
        assert needle in text, f"architecture doc lost the {needle!r} section"


def test_architecture_doc_covers_packed_tableau():
    """The packed-tableau section must name the word layout, the
    popcount phase walk, the selection threshold/policy, and the new
    bench surface (lanes, floors, --check)."""
    text = ARCHITECTURE.read_text()
    for needle in (
        "Packed tableau",
        "PackedTableau",
        "PACKED_TABLEAU_THRESHOLD",
        "np.uint64",
        "ceil(n/64)",
        "np.bitwise_count",
        "PackedCosetSupport",
        "tableau_impl",
        "stabilizer_packed_ghz",
        "diagonal_fusion_dense",
        "floor",
        "--check",
    ):
        assert needle in text, f"architecture doc lost the {needle!r} section"


def test_architecture_doc_covers_diagonal_fusion():
    text = ARCHITECTURE.read_text()
    for needle in (
        "Diagonal-run kernel fusion",
        "apply_diagonal",
        "scan_diagonal_runs",
        "FUSE_DIAGONAL_RUNS",
    ):
        assert needle in text, f"architecture doc lost the {needle!r} section"


def test_architecture_doc_covers_mps_engine():
    """The MPS section must name the canonical form, the chi/truncation
    contract, the sampling sweep, the routing heuristic, and the v5
    bench surface (lanes, ceiling, sub-option hygiene)."""
    text = ARCHITECTURE.read_text()
    for needle in (
        "MPS engine",
        "MPSEngine",
        "mixed-canonical",
        "chi",
        "truncation_threshold",
        "truncation_error",
        "conditional-marginal sweep",
        "line-like",
        "LINE_RANGE",
        '"mps"',
        "mps_brickwork",
        "mps_qaoa_wide",
        "max_seconds",
        "max_bond_dimension",
    ):
        assert needle in text, f"architecture doc lost the {needle!r} section"


def test_architecture_doc_covers_batched_and_sharding():
    """The batched-execution section must name the batch container, the
    lockstep-window contract, the cache-working-set policy, the RNG
    parity rules, and the sharding layer's reproducibility contract."""
    text = ARCHITECTURE.read_text()
    for needle in (
        "Batched execution",
        "BatchedStateVector",
        "BatchedDenseEngine",
        "lockstep",
        "BATCH_MAX_BYTES",
        "batch_min_groups",
        '"batched"',
        "workers",
        "sample_counts_sharded",
        "SHARD_BLOCK_SHOTS",
        "child_rng",
        "shared_memory",
        "batched_ghz_grouped",
        "sharded_throughput",
    ):
        assert needle in text, f"architecture doc lost the {needle!r} section"


def test_architecture_doc_covers_blocked_execution():
    """The cache-blocked section must name the switch, the tile
    derivation, the schedule/executor surface, the remap layer with its
    unwind contract, and the v8 bench lanes."""
    text = ARCHITECTURE.read_text()
    for needle in (
        "Cache-blocked wide-state execution",
        "BLOCKED_SWEEPS",
        "blocked_tile_qubits",
        "plan_blocked_window",
        "execute_blocked",
        "remap_low",
        "unwind_remap",
        "placement_permutation",
        "block_schedules",
        "batch_max_bytes",
        "blocked_wide_dense",
        "batched_wide_grouped",
        "tests/test_blocked.py",
    ):
        assert needle in text, f"architecture doc lost the {needle!r} section"


def test_readme_covers_blocked_execution():
    """The README engine table must carry the blocked-sweep note and
    point at the recorded wide lanes."""
    text = README.read_text()
    for needle in (
        "cache-blocked sweeps",
        "blocked_wide_dense",
        "batched_wide_grouped",
        "batch_max_bytes",
    ):
        assert needle in text, f"README lost the {needle!r} coverage"


def test_architecture_doc_covers_execution_plans():
    """The execution-plans section must name both plan tiers, the
    structural-hash contract, the cache surface (entry point, bound,
    options key, kill switch), every engine's artifact set, and the
    pinning suites (fuzzer + bench lane)."""
    text = ARCHITECTURE.read_text()
    for needle in (
        "Execution plans & the plan cache",
        "ExecutionPlan",
        "BoundPlan",
        "structural_hash",
        "plan_for",
        "PLAN_CACHE_MAX",
        "PLANS_ENABLED",
        "plan_artifacts",
        "window_partitions",
        "diagonal_tables",
        "block_matrices",
        "clifford_boundary",
        "swap_routes",
        "FUSE_BLOCKS",
        "plan_cache_parameterized",
        "--fuzz-deep",
    ):
        assert needle in text, f"architecture doc lost the {needle!r} section"


def test_architecture_doc_covers_fault_tolerance():
    """The fault-tolerance section must name the resilience module, the
    recovery protocol surface, the admission-control contract, the
    degradation ladder, the fault harness, and the v9 bench lane."""
    text = ARCHITECTURE.read_text()
    for needle in (
        "Fault tolerance & admission control",
        "repro.simulator.resilience",
        "simulator.resilience.",
        "MAX_POOL_REBUILDS",
        "block_timeout",
        "check_admission",
        "ResourceAdmissionError",
        "estimate_peak_bytes",
        "max_state_bytes",
        "run_with_fallback",
        "FALLBACK_CHAINS",
        "FallbackResult",
        "repro.testing.faults",
        "inject_faults",
        "fault_point",
        "worker_only",
        "-m faults",
        "--faults-deep",
        "sharded_with_faults",
    ):
        assert needle in text, f"architecture doc lost the {needle!r} section"


def test_readme_covers_fault_tolerance():
    """The README must describe the resilience layer: the recovery
    bit-identity contract, the admission-control surface, the fallback
    ladder, the fault harness workflow, and the recorded bench lane."""
    text = README.read_text()
    for needle in (
        "repro.simulator.resilience",
        "check_admission",
        "ResourceAdmissionError",
        "max_state_bytes",
        "run_with_fallback",
        "FALLBACK_CHAINS",
        "repro.testing.faults",
        "-m faults",
        "--faults-deep",
        "sharded_with_faults",
        "src/repro/testing",
    ):
        assert needle in text, f"README lost the {needle!r} resilience coverage"


def test_architecture_doc_covers_observability():
    """The observability section must name the tracing module, the
    run-scope/span surface, every span-name prefix, the report schema,
    the metrics fan-out, the REST surface, and the v10 bench lane."""
    text = ARCHITECTURE.read_text()
    for needle in (
        "Observability & tracing",
        "repro.telemetry.tracing",
        "ExecutionReport",
        "trace=True",
        "sampler.grouped",
        "plan.lookup",
        "engine.advance_window",
        "shard.block",
        "resilience.fallback",
        "shard_spans",
        "block_trace",
        "record_execution",
        "simulator.exec.",
        "SimulatorCountersPlugin",
        "GET /metrics?prefix=",
        "execution_report",
        "tracing_overhead",
        "bit-identical with tracing on or off",
    ):
        assert needle in text, f"architecture doc lost the {needle!r} section"


def test_readme_covers_observability():
    """The README performance workflow must describe the flight
    recorder: the trace sub-option, the bit-identity contract, the
    metrics fan-out, the REST surface, and the recorded bench lane."""
    text = README.read_text()
    for needle in (
        "repro.telemetry.tracing",
        "trace=True",
        "ExecutionReport",
        "bit-identical with tracing on or off",
        "record_execution",
        "simulator.exec.",
        "SimulatorCountersPlugin",
        "GET /metrics?prefix=",
        "execution_report",
        "tracing_overhead",
    ):
        assert needle in text, f"README lost the {needle!r} observability coverage"


def test_readme_covers_plan_cache():
    """The README performance workflow must describe the plan cache:
    the structural-hash keying, the bit-identity contract with its fuzz
    enforcement, and the recorded bench lane."""
    text = README.read_text()
    for needle in (
        "repro.compiler.plans",
        "ExecutionPlan",
        "structural hash",
        "bit-identical to the unplanned path",
        "-m fuzz",
        "--fuzz-deep",
        "plan_cache_parameterized",
        "PLANS_ENABLED",
    ):
        assert needle in text, f"README lost the {needle!r} plan-cache coverage"


def test_readme_covers_batched_and_sharding():
    """The README engine table must carry the batched row and the
    workers workflow must point at the recorded lanes."""
    text = README.read_text()
    for needle in (
        "| batched |",
        "workers",
        "batched_ghz_grouped",
        "sharded_throughput",
    ):
        assert needle in text, f"README lost the {needle!r} coverage"


def test_readme_covers_mps_engine():
    """The README engine table must carry the MPS row and the scaling
    claims must point at the recorded lanes."""
    text = README.read_text()
    for needle in (
        "| mps |",
        "matrix product state",
        "chi",
        "mps_brickwork",
        "mps_qaoa_wide",
        "conditional-marginal",
    ):
        assert needle in text, f"README lost the {needle!r} MPS coverage"


def test_readme_scaling_table_reaches_1024_qubits():
    """The README scaling table must cover the packed-tableau widths and
    point at the lanes that record the authoritative numbers."""
    text = README.read_text()
    for needle in ("| 256 |", "| 512 |", "| 1024 |", "stabilizer_packed_ghz"):
        assert needle in text, f"README scaling table lost {needle!r}"
    assert "--check" in text, "README must document the bench regression guard"


def test_readme_points_at_engine_registry():
    text = README.read_text()
    assert "src/repro/simulator/engines" in text, (
        "README subsystem map must point at the execution-engine registry"
    )


def test_every_package_has_init_docstring():
    inits = sorted(SRC.rglob("__init__.py")) + [SRC / "__init__.py"]
    bad = []
    for init in inits:
        tree = ast.parse(init.read_text())
        doc = ast.get_docstring(tree)
        if not doc or not doc.strip():
            bad.append(str(init.relative_to(REPO)))
    assert not bad, f"packages without an __init__ docstring: {bad}"
