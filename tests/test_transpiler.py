"""Tests for decomposition, layout, routing, and the full pipeline."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import QuantumCircuit, ghz_circuit, random_circuit
from repro.errors import TranspilationError
from repro.qpu.params import nominal_calibration
from repro.qpu.topology import Topology
from repro.simulator import ideal_probabilities, sample_counts
from repro.simulator.statevector import circuit_unitary
from repro.transpiler import (
    best_ghz_chain,
    decompose_swaps,
    decompose_to_cz,
    layout_fidelity_score,
    line_layout,
    noise_adaptive_layout,
    route,
    synthesize_native,
    transpile,
    trivial_layout,
)
from tests.conftest import assert_close_up_to_phase


class TestDecomposeToCZ:
    @pytest.mark.parametrize("seed", range(3))
    def test_unitary_equivalence(self, seed):
        qc = random_circuit(3, 12, seed=seed, measure=False)
        qc.iswap(0, 1).cp(0.7, 1, 2).rzz(0.3, 0, 2).swap(0, 2).cx(2, 0)
        out = decompose_to_cz(qc)
        assert_close_up_to_phase(circuit_unitary(out), circuit_unitary(qc))

    def test_only_cz_two_qubit_remains(self):
        qc = QuantumCircuit(3)
        qc.cx(0, 1).swap(1, 2).iswap(0, 2).cp(0.3, 0, 1).rzz(0.2, 1, 2)
        out = decompose_to_cz(qc)
        for inst in out:
            if inst.is_two_qubit:
                assert inst.name == "cz"

    def test_symbolic_params_survive(self):
        from repro.circuits.parameters import Parameter

        p = Parameter("p")
        qc = QuantumCircuit(2)
        qc.cp(p, 0, 1)
        out = decompose_to_cz(qc)
        assert out.parameters == (p,)

    def test_measurements_preserved(self):
        qc = ghz_circuit(3)
        out = decompose_to_cz(qc)
        assert out.count_ops()["measure"] == 3


class TestSynthesizeNative:
    @pytest.mark.parametrize("seed", range(4))
    def test_unitary_equivalence(self, seed):
        qc = random_circuit(3, 20, seed=100 + seed, measure=False)
        native = synthesize_native(decompose_to_cz(qc))
        assert_close_up_to_phase(circuit_unitary(native), circuit_unitary(qc))

    def test_output_gate_set(self):
        qc = random_circuit(3, 15, seed=0, measure=False)
        native = synthesize_native(decompose_to_cz(qc))
        assert set(native.count_ops()) <= {"prx", "cz", "rz", "measure", "barrier", "delay"}

    def test_single_pulse_per_run(self):
        """A run of five 1q gates merges into at most one PRX pulse."""
        qc = QuantumCircuit(1)
        qc.h(0).t(0).s(0).x(0).rz(0.3, 0)
        native = synthesize_native(decompose_to_cz(qc))
        assert native.count_ops().get("prx", 0) <= 1

    def test_measurement_outcome_equivalence(self):
        qc = random_circuit(4, 25, seed=3)
        native = synthesize_native(decompose_to_cz(qc))
        p1 = ideal_probabilities(qc)
        p2 = ideal_probabilities(native)
        for key in set(p1) | set(p2):
            assert p1.get(key, 0) == pytest.approx(p2.get(key, 0), abs=1e-9)

    def test_pure_rz_stays_virtual(self):
        qc = QuantumCircuit(1)
        qc.rz(0.7, 0)
        native = synthesize_native(decompose_to_cz(qc))
        ops = native.count_ops()
        assert ops.get("prx", 0) == 0
        assert ops.get("rz", 0) == 1  # trailing virtual rz

    def test_rz_before_measure_dropped(self):
        qc = QuantumCircuit(1)
        qc.rz(0.7, 0)
        qc.measure(0)
        native = synthesize_native(decompose_to_cz(qc))
        assert native.count_ops() == {"measure": 1}

    def test_virtual_rz_commutes_through_cz(self):
        qc = QuantumCircuit(2)
        qc.rz(0.5, 0)
        qc.cz(0, 1)
        qc.h(0)
        native = synthesize_native(qc)
        assert_close_up_to_phase(circuit_unitary(native), circuit_unitary(qc))


class TestLayout:
    def test_trivial(self, grid20):
        qc = ghz_circuit(5)
        assert trivial_layout(qc, grid20) == {i: i for i in range(5)}

    def test_trivial_too_large(self, grid20):
        with pytest.raises(TranspilationError):
            trivial_layout(QuantumCircuit(25), grid20)

    def test_line_layout_contiguous(self, grid20, snapshot):
        qc = ghz_circuit(6)
        layout = line_layout(qc, grid20, snapshot)
        phys = [layout[i] for i in range(6)]
        for a, b in zip(phys, phys[1:]):
            assert grid20.is_coupled(a, b)

    def test_noise_adaptive_valid_bijection(self, grid20, snapshot):
        qc = random_circuit(8, 30, seed=1)
        layout = noise_adaptive_layout(qc, grid20, snapshot)
        assert len(set(layout.values())) == 8
        assert set(layout) == set(range(8))

    def test_noise_adaptive_avoids_bad_region(self, grid20):
        """Degrade one corner; placement should avoid it for a 2q circuit."""
        from repro.qpu.params import CouplerParams, QubitParams

        snap = nominal_calibration(grid20, rng=3)
        bad_qubit = QubitParams(
            t1=5e-6, t2=4e-6, prx_error=0.2, readout_error_0=0.3, readout_error_1=0.3
        )
        snap = snap.with_updates(qubits={0: bad_qubit, 1: bad_qubit})
        qc = QuantumCircuit(2)
        qc.cz(0, 1)
        qc.measure_all()
        layout = noise_adaptive_layout(qc, grid20, snap)
        assert 0 not in layout.values() and 1 not in layout.values()

    def test_layout_fidelity_score_orders(self, grid20):
        from repro.qpu.params import QubitParams

        snap = nominal_calibration(grid20, rng=3)
        bad = QubitParams(
            t1=5e-6, t2=4e-6, prx_error=0.2, readout_error_0=0.3, readout_error_1=0.3
        )
        snap = snap.with_updates(qubits={0: bad})
        qc = QuantumCircuit(1)
        qc.x(0)
        qc.measure_all()
        good_score = layout_fidelity_score(qc, {0: 7}, snap)
        bad_score = layout_fidelity_score(qc, {0: 0}, snap)
        assert good_score > bad_score


class TestBestGhzChain:
    def test_chain_is_simple_path(self, snapshot, grid20):
        chain = best_ghz_chain(snapshot, 8)
        assert len(set(chain)) == 8
        for a, b in zip(chain, chain[1:]):
            assert grid20.is_coupled(a, b)

    def test_full_device_chain(self, snapshot):
        chain = best_ghz_chain(snapshot, 20)
        assert sorted(chain) == list(range(20))

    def test_single_qubit_chain(self, snapshot):
        chain = best_ghz_chain(snapshot, 1)
        assert len(chain) == 1

    def test_invalid_length(self, snapshot):
        with pytest.raises(TranspilationError):
            best_ghz_chain(snapshot, 0)
        with pytest.raises(TranspilationError):
            best_ghz_chain(snapshot, 21)


class TestRouting:
    def test_adjacent_needs_no_swaps(self, grid20):
        qc = QuantumCircuit(2)
        qc.cz(0, 1)
        result = route(qc, grid20)
        assert result.swap_count == 0

    def test_distant_pair_gets_swaps(self, grid20):
        qc = QuantumCircuit(20)
        qc.cz(0, 19)
        result = route(qc, grid20)
        assert result.swap_count >= grid20.distance(0, 19) - 1

    def test_all_cz_coupler_legal_after_routing(self, grid20):
        qc = random_circuit(8, 40, seed=5, measure=False)
        cz_only = decompose_to_cz(qc)
        routed = decompose_swaps(route(cz_only, grid20).circuit)
        for inst in routed:
            if inst.name == "cz":
                assert grid20.is_coupled(*inst.qubits)

    def test_final_layout_tracks_swaps(self, grid20):
        qc = QuantumCircuit(20)
        qc.cz(0, 19)
        result = route(qc, grid20)
        # every logical qubit still mapped to a distinct physical one
        assert len(set(result.final_layout.values())) == 20

    def test_non_cz_two_qubit_rejected(self, grid20):
        qc = QuantumCircuit(2)
        qc.cx(0, 1)
        with pytest.raises(TranspilationError):
            route(qc, grid20)

    def test_bad_layout_rejected(self, grid20):
        qc = QuantumCircuit(2)
        qc.cz(0, 1)
        with pytest.raises(TranspilationError):
            route(qc, grid20, {0: 0, 1: 0})

    @pytest.mark.parametrize("seed", range(3))
    def test_routed_semantics_preserved(self, grid20, seed):
        """Measured distribution invariant under routing (via final layout)."""
        qc = random_circuit(5, 20, seed=seed)
        result = transpile(qc, grid20, layout_method="trivial")
        p_orig = ideal_probabilities(qc)
        p_routed = ideal_probabilities(result.circuit)
        for key in set(p_orig) | set(p_routed):
            assert p_orig.get(key, 0) == pytest.approx(
                p_routed.get(key, 0), abs=1e-9
            )


class TestPipeline:
    def test_output_is_native(self, grid20, snapshot):
        result = transpile(random_circuit(6, 30, seed=2), grid20, snapshot=snapshot)
        assert result.circuit.is_native()

    def test_stats_shape(self, grid20, snapshot):
        stats = transpile(ghz_circuit(5), grid20, snapshot=snapshot).stats()
        assert {"prx", "cz", "swaps_inserted", "depth"} <= set(stats)

    def test_unbound_parameters_rejected(self, grid20):
        from repro.circuits.parameters import Parameter

        qc = QuantumCircuit(1)
        qc.rx(Parameter("p"), 0)
        with pytest.raises(TranspilationError):
            transpile(qc, grid20)

    def test_unknown_layout_method_rejected(self, grid20):
        with pytest.raises(TranspilationError):
            transpile(ghz_circuit(2), grid20, layout_method="magic")

    def test_noise_adaptive_falls_back_without_snapshot(self, grid20):
        result = transpile(ghz_circuit(3), grid20, snapshot=None)
        assert result.layout_method == "trivial"

    def test_explicit_initial_layout_respected(self, grid20, snapshot):
        layout = {0: 10, 1: 11, 2: 12}
        result = transpile(
            ghz_circuit(3), grid20, snapshot=snapshot, initial_layout=layout
        )
        assert result.initial_layout == layout

    def test_physical_measured_qubits(self, grid20, snapshot):
        result = transpile(ghz_circuit(3), grid20, snapshot=snapshot)
        mapping = result.physical_measured_qubits
        assert set(mapping) == {0, 1, 2}
        assert set(mapping.values()) == set(result.final_layout.values())

    @given(st.integers(0, 1000))
    @settings(max_examples=15, deadline=None)
    def test_random_circuits_full_pipeline_semantics(self, seed):
        """Property: transpilation preserves measured distributions."""
        grid = Topology.square_grid(3, 3)
        snap = nominal_calibration(grid, rng=0)
        qc = random_circuit(4, 15, seed=seed)
        result = transpile(qc, grid, snapshot=snap)
        p_orig = ideal_probabilities(qc)
        p_new = ideal_probabilities(result.circuit)
        for key in set(p_orig) | set(p_new):
            assert p_orig.get(key, 0) == pytest.approx(p_new.get(key, 0), abs=1e-8)
