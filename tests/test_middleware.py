"""Tests for the REST facade, MQSS client routing, and adapters."""

import pytest

from repro.circuits import ghz_circuit
from repro.circuits.serialize import circuit_to_dict
from repro.errors import AdapterError, RestApiError
from repro.middleware import MQSSClient, RestClient, RestServer, detect_execution_context
from repro.middleware.adapters import (
    QPI_SUCCESS,
    ClassicalRegister,
    QiskitLikeAdapter,
    QiskitLikeCircuit,
    QuantumRegister,
    make_kernel,
    qnode,
    qpi_apply,
    qpi_create,
    qpi_destroy,
    qpi_finalize,
    qpi_measure_all,
)
from repro.middleware.adapters.pennylane_like import CNOT, Hadamard, RX
from repro.middleware.adapters.qpi import QPI_ERROR_INVALID_ARGUMENT
from repro.qpu import QPUDevice
from repro.scheduler import QuantumResourceManager


@pytest.fixture
def qrm(device):
    return QuantumResourceManager(device)


@pytest.fixture
def server(qrm):
    return RestServer(qrm)


class TestRestServer:
    def test_submit_and_fetch(self, server):
        resp = server.post_job({"circuit": circuit_to_dict(ghz_circuit(2)), "shots": 64})
        assert resp.status == 201
        job_id = resp.body["job_id"]
        assert server.get_job(job_id).body["status"] == "pending"
        server.process()
        body = server.get_job(job_id).body
        assert body["status"] == "completed"
        assert sum(body["result"]["counts"].values()) == 64

    def test_missing_circuit_400(self, server):
        assert server.post_job({"shots": 10}).status == 400

    def test_bad_circuit_400(self, server):
        assert server.post_job({"circuit": {"bogus": 1}}).status == 400

    def test_bad_shots_400(self, server):
        payload = {"circuit": circuit_to_dict(ghz_circuit(2)), "shots": -5}
        assert server.post_job(payload).status == 400

    def test_excessive_shots_422(self, server):
        payload = {"circuit": circuit_to_dict(ghz_circuit(2)), "shots": 10_000_000}
        assert server.post_job(payload).status == 422

    def test_unknown_job_404(self, server):
        assert server.get_job(999).status == 404

    def test_cancel_pending(self, server):
        resp = server.post_job({"circuit": circuit_to_dict(ghz_circuit(2))})
        job_id = resp.body["job_id"]
        assert server.delete_job(job_id).status == 200
        assert server.get_job(job_id).body["status"] == "cancelled"

    def test_cancel_completed_conflict(self, server):
        resp = server.post_job({"circuit": circuit_to_dict(ghz_circuit(2)), "shots": 16})
        server.process()
        assert server.delete_job(resp.body["job_id"]).status == 409

    def test_device_endpoint(self, server):
        body = server.get_device().body
        assert body["num_qubits"] == 20
        assert len(body["coupling_map"]) == 31
        assert "prx" in body["native_gates"]

    def test_pagination(self, server):
        """Section 4: efficient pagination over large job histories."""
        for i in range(25):
            server.post_job(
                {"circuit": circuit_to_dict(ghz_circuit(2)), "shots": 1, "user": f"u{i % 2}"}
            )
        page1 = server.list_jobs(offset=0, limit=10).body
        assert page1["total"] == 25
        assert len(page1["jobs"]) == 10
        assert page1["next_offset"] == 10
        page3 = server.list_jobs(offset=20, limit=10).body
        assert len(page3["jobs"]) == 5
        assert page3["next_offset"] is None

    def test_pagination_filters(self, server):
        for i in range(6):
            server.post_job(
                {"circuit": circuit_to_dict(ghz_circuit(2)), "shots": 1, "user": f"u{i % 2}"}
            )
        filtered = server.list_jobs(user="u0").body
        assert filtered["total"] == 3

    def test_page_size_capped(self, server):
        body = server.list_jobs(limit=10_000).body
        assert body["limit"] == RestServer.MAX_PAGE_SIZE

    def test_bad_pagination_params(self, server):
        assert server.list_jobs(offset=-1).status == 400


class TestMetricsEndpoint:
    @pytest.fixture
    def metric_server(self, qrm):
        from repro.telemetry import MetricStore

        return RestServer(qrm, metrics=MetricStore())

    def test_metrics_404_without_store(self, server):
        resp = server.get_metrics()
        assert resp.status == 404
        assert "no metric store" in resp.body["error"]

    def test_metrics_latest_values_with_prefix_filter(self, metric_server):
        metric_server.metrics.insert("qpu.t1", 0.0, 40e-6)
        metric_server.metrics.insert("qpu.t1", 1.0, 39e-6)
        metric_server.metrics.insert("facility.temp", 0.0, 290.0)
        resp = metric_server.get_metrics(prefix="qpu")
        assert resp.status == 200
        assert resp.body["count"] == 1
        assert resp.body["sensors"]["qpu.t1"] == {
            "timestamp": 1.0,
            "value": 39e-6,
        }
        everything = metric_server.get_metrics()
        assert everything.body["count"] == 2

    def test_metrics_empty_prefix_match(self, metric_server):
        resp = metric_server.get_metrics(prefix="nope")
        assert resp.status == 200
        assert resp.body == {"prefix": "nope", "count": 0, "sensors": {}}

    def test_traced_job_report_served_and_recorded(self, metric_server):
        """The observability loop end to end: a traced job's
        ExecutionReport rides GET /jobs/{id} and lands on the attached
        store as simulator.exec.* sensors at the completion clock."""
        from repro.simulator import engine_mode

        payload = {"circuit": circuit_to_dict(ghz_circuit(3)), "shots": 64}
        job_id = metric_server.post_job(payload).body["job_id"]
        with engine_mode("fast", trace=True):
            metric_server.process()
        body = metric_server.get_job(job_id).body
        assert body["status"] == "completed"
        report = body["result"]["execution_report"]
        assert report["mode"] == "fast"
        assert report["shots"] == 64
        assert report["wall_seconds"] > 0.0
        assert "sampler.grouped" in report["phase_seconds"]
        assert (
            metric_server.metrics.latest("simulator.exec.shots").value == 64.0
        )
        assert (
            metric_server.metrics.latest("simulator.exec.wall_seconds").value
            > 0.0
        )

    def test_untraced_job_has_no_report(self, metric_server):
        payload = {"circuit": circuit_to_dict(ghz_circuit(2)), "shots": 32}
        job_id = metric_server.post_job(payload).body["job_id"]
        metric_server.process()
        body = metric_server.get_job(job_id).body
        assert body["status"] == "completed"
        assert "execution_report" not in body["result"]
        assert metric_server.metrics.sensors("simulator.exec") == []

    def test_reports_from_two_jobs_share_the_timeline(self, metric_server):
        from repro.simulator import engine_mode

        for _ in range(2):
            payload = {"circuit": circuit_to_dict(ghz_circuit(2)), "shots": 16}
            metric_server.post_job(payload)
        with engine_mode("fast", trace=True):
            metric_server.process(max_jobs=2)
        ts, vs = metric_server.metrics.query("simulator.exec.shots")
        assert list(vs) == [16.0, 16.0]
        assert ts[1] > ts[0]  # device clock advanced between completions


class TestRestClient:
    def test_full_cycle(self, server):
        client = RestClient(server)
        job_id = client.submit(ghz_circuit(2), shots=32)
        result = client.wait(job_id)
        assert sum(result["counts"].values()) == 32

    def test_result_before_completion_raises(self, server):
        client = RestClient(server)
        job_id = client.submit(ghz_circuit(2), shots=8)
        with pytest.raises(RestApiError):
            client.result(job_id)

    def test_error_status_carried(self, server):
        client = RestClient(server)
        with pytest.raises(RestApiError) as err:
            client.status(9999)
        assert err.value.status == 404


class TestClientRouting:
    def test_detect_context_from_env(self):
        assert detect_execution_context({"SLURM_JOB_ID": "123"}) == "hpc"
        assert detect_execution_context({}) == "remote"

    def test_explicit_contexts(self, qrm):
        assert MQSSClient(qrm, context="hpc").context == "hpc"
        assert MQSSClient(qrm, context="remote").context == "remote"

    def test_auto_context_uses_env(self, qrm):
        client = MQSSClient(qrm, context="auto", env={"SLURM_JOB_ID": "1"})
        assert client.context == "hpc"

    def test_both_paths_same_distribution(self, qrm):
        """Figure 2's core contract: identical results either way."""
        hpc = MQSSClient(qrm, context="hpc")
        remote = MQSSClient(qrm, context="remote")
        ch = hpc.run(ghz_circuit(3), shots=4000)
        cr = remote.run(ghz_circuit(3), shots=4000)
        assert ch.total_variation_distance(cr) < 0.05
        assert hpc.records[-1].path == "hpc"
        assert remote.records[-1].path == "rest"

    def test_invalid_context_rejected(self, qrm):
        from repro.errors import RoutingError

        with pytest.raises(RoutingError):
            MQSSClient(qrm, context="cloud")

    def test_run_detailed_provenance(self, qrm):
        client = MQSSClient(qrm, context="hpc")
        record = client.run_detailed(ghz_circuit(2), shots=16)
        assert record.shots == 16
        assert record.duration > 0


class TestQiskitAdapter:
    def test_register_arithmetic(self):
        qr1, qr2 = QuantumRegister(2, "a"), QuantumRegister(3, "b")
        qc = QiskitLikeCircuit(qr1, qr2)
        qc.h(qr2[0])
        translated = QiskitLikeAdapter.translate(qc)
        assert translated[0].qubits == (2,)  # qr2[0] is global index 2

    def test_bell_distribution(self, qrm):
        qr = QuantumRegister(2)
        qc = QiskitLikeCircuit(qr, name="bell")
        qc.h(qr[0]).cx(qr[0], qr[1]).measure_all()
        counts = MQSSClient(qrm, context="hpc").run(
            QiskitLikeAdapter.translate(qc), shots=500
        )
        assert counts.ghz_fidelity_estimate() > 0.8

    def test_explicit_classical_register(self):
        qr, cr = QuantumRegister(2), ClassicalRegister(2)
        qc = QiskitLikeCircuit(qr, cr)
        qc.measure(qr[1], cr[0])
        translated = QiskitLikeAdapter.translate(qc)
        assert translated[0].clbits == (0,)

    def test_foreign_register_rejected(self):
        qc = QiskitLikeCircuit(QuantumRegister(2))
        other = QuantumRegister(2)
        with pytest.raises(AdapterError):
            qc.h(other[0])


class TestPennylaneAdapter:
    def test_qnode_records_tape(self, qrm):
        @qnode(num_wires=2)
        def bell():
            Hadamard(wires=0)
            CNOT(wires=[0, 1])

        counts = MQSSClient(qrm, context="hpc").run(bell(), shots=400)
        assert counts.ghz_fidelity_estimate() > 0.8

    def test_parameterized_qnode(self, qrm):
        import math

        @qnode(num_wires=1)
        def rot(theta):
            RX(theta, wires=0)

        counts = MQSSClient(qrm, context="hpc").run(rot(math.pi), shots=400)
        assert counts.most_frequent() == "1"

    def test_ops_outside_qnode_rejected(self):
        with pytest.raises(AdapterError):
            Hadamard(wires=0)

    def test_wrong_wire_count_rejected(self):
        @qnode(num_wires=2)
        def bad():
            CNOT(wires=[0])

        with pytest.raises(AdapterError):
            bad()


class TestCudaqAdapter:
    def test_kernel_building(self, qrm):
        kernel, q = make_kernel(3, "ghz")
        kernel.h(q[0]).cx(q[0], q[1]).cx(q[1], q[2]).mz()
        counts = MQSSClient(qrm, context="hpc").run(kernel.module, shots=400)
        assert counts.ghz_fidelity_estimate() > 0.75

    def test_qvector_bounds(self):
        _, q = make_kernel(2)
        with pytest.raises(AdapterError):
            q[5]

    def test_module_is_quake(self):
        kernel, q = make_kernel(2)
        kernel.h(q[0])
        assert kernel.module.dialects_used() == {"quake"}


class TestQpiAdapter:
    def test_procedural_flow(self, qrm):
        h = qpi_create(2, "bell")
        assert qpi_apply(h, "H", [0]) == QPI_SUCCESS
        assert qpi_apply(h, "CNOT", [0, 1]) == QPI_SUCCESS
        assert qpi_measure_all(h) == QPI_SUCCESS
        circuit = qpi_finalize(h)
        counts = MQSSClient(qrm, context="hpc").run(circuit, shots=400)
        assert counts.ghz_fidelity_estimate() > 0.8

    def test_status_codes_not_exceptions(self):
        h = qpi_create(1)
        assert qpi_apply(h, "WARP", [0]) == QPI_ERROR_INVALID_ARGUMENT
        assert qpi_apply(h, "H", [5]) == QPI_ERROR_INVALID_ARGUMENT
        assert qpi_apply(h, "RX", [0]) == QPI_ERROR_INVALID_ARGUMENT  # missing param
        qpi_destroy(h)

    def test_finalize_closes_handle(self):
        h = qpi_create(1)
        qpi_apply(h, "X", [0])
        qpi_finalize(h)
        with pytest.raises(AdapterError):
            qpi_apply(h, "X", [0])

    def test_destroy_unknown_handle(self):
        from repro.middleware.adapters.qpi import QPI_ERROR_INVALID_HANDLE

        assert qpi_destroy(424242) == QPI_ERROR_INVALID_HANDLE


class TestBatchJobs:
    """Section 4: 'Users requested features such as batch-job support'."""

    def test_batch_submission(self, server):
        from repro.circuits.serialize import circuit_to_dict

        payload = {
            "jobs": [
                {"circuit": circuit_to_dict(ghz_circuit(2)), "shots": 16}
                for _ in range(5)
            ]
        }
        resp = server.post_batch(payload)
        assert resp.status == 201
        assert resp.body["count"] == 5
        server.process(max_jobs=5)
        for job_id in resp.body["job_ids"]:
            assert server.get_job(job_id).body["status"] == "completed"

    def test_batch_atomic_on_invalid_element(self, server):
        from repro.circuits.serialize import circuit_to_dict

        payload = {
            "jobs": [
                {"circuit": circuit_to_dict(ghz_circuit(2)), "shots": 16},
                {"shots": 16},  # missing circuit
            ]
        }
        resp = server.post_batch(payload)
        assert resp.status == 400
        assert server.qrm.queue_length == 0  # nothing enqueued

    def test_batch_empty_rejected(self, server):
        assert server.post_batch({"jobs": []}).status == 400

    def test_batch_size_limit(self, server):
        from repro.circuits.serialize import circuit_to_dict

        one = {"circuit": circuit_to_dict(ghz_circuit(2)), "shots": 1}
        assert server.post_batch({"jobs": [one] * 101}).status == 422

    def test_client_batch_helper(self, server):
        client = RestClient(server)
        ids = client.submit_batch([ghz_circuit(2), ghz_circuit(3)], shots=8)
        assert len(ids) == 2
        for job_id in ids:
            client.wait(job_id)


class TestStructuredTimeout:
    """The wait/timeout contract: a stuck queue surfaces as a
    structured, attributable error, and the device endpoint exposes the
    live queue depth clients use to back off before submitting."""

    def test_wait_timeout_raises_structured_error(self, server, monkeypatch):
        from repro.errors import JobTimeoutError

        client = RestClient(server)
        job_id = client.submit(ghz_circuit(2), shots=8)
        monkeypatch.setattr(server, "process", lambda max_jobs=1: 0)  # stuck queue
        with pytest.raises(JobTimeoutError) as excinfo:
            client.wait(job_id, max_ticks=3)
        err = excinfo.value
        assert err.job_id == job_id
        assert err.last_status == "pending"
        assert err.max_ticks == 3
        assert err.status == 504
        assert isinstance(err, RestApiError)  # existing handlers still catch it
        assert "3 ticks" in str(err) and "pending" in str(err)

    def test_device_endpoint_reports_queue_depth(self, server):
        assert server.get_device().body["queue_depth"] == 0
        server.post_job({"circuit": circuit_to_dict(ghz_circuit(2)), "shots": 8})
        server.post_job({"circuit": circuit_to_dict(ghz_circuit(2)), "shots": 8})
        assert server.get_device().body["queue_depth"] == 2
        server.process(2)
        assert server.get_device().body["queue_depth"] == 0
