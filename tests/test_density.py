"""Tests for the exact density-matrix engine."""

import numpy as np
import pytest

from repro.circuits import QuantumCircuit, ghz_circuit
from repro.errors import SimulationError
from repro.simulator import (
    DensityMatrix,
    NoiseModel,
    depolarizing_error,
    pauli_error,
    simulate_density,
)
from repro.simulator.channels import (
    amplitude_damping_channel,
    depolarizing_channel,
)
from repro.simulator.statevector import StateVector, simulate_statevector


class TestDensityMatrix:
    def test_initial_pure_zero(self):
        rho = DensityMatrix(2)
        assert rho.trace() == pytest.approx(1.0)
        assert rho.purity() == pytest.approx(1.0)

    def test_size_limit(self):
        with pytest.raises(SimulationError):
            DensityMatrix(11)

    def test_from_statevector(self):
        sv = StateVector(1)
        sv.apply_gate("h", [0])
        rho = DensityMatrix.from_statevector(sv)
        assert rho.purity() == pytest.approx(1.0)
        np.testing.assert_allclose(rho.probabilities(), [0.5, 0.5], atol=1e-12)

    def test_unitary_matches_statevector(self):
        qc = ghz_circuit(3, measure=False)
        rho = simulate_density(qc)
        sv = simulate_statevector(qc)
        assert rho.fidelity_pure(sv) == pytest.approx(1.0)

    def test_channel_reduces_purity(self):
        rho = DensityMatrix(1)
        rho.apply_unitary(np.array([[1, 1], [1, -1]]) / np.sqrt(2), [0])
        rho.apply_channel(depolarizing_channel(0.5), [0])
        assert rho.purity() < 1.0
        assert rho.trace() == pytest.approx(1.0)

    def test_expectation(self):
        rho = DensityMatrix(1)
        z = np.diag([1.0, -1.0])
        assert rho.expectation(z) == pytest.approx(1.0)


class TestSimulateDensity:
    def test_noiseless_matches_probs(self):
        qc = ghz_circuit(4, measure=False)
        rho = simulate_density(qc)
        probs = rho.probabilities()
        assert probs[0] == pytest.approx(0.5)
        assert probs[-1] == pytest.approx(0.5)

    def test_stochastic_error_expansion(self):
        """Pauli error expands to the exact mixture."""
        qc = QuantumCircuit(1)
        qc.id(0)
        nm = NoiseModel()
        nm.add_gate_error(pauli_error([("X", 0.3)]), "id")
        rho = simulate_density(qc, nm)
        np.testing.assert_allclose(rho.probabilities(), [0.7, 0.3], atol=1e-12)

    def test_exact_channel_override(self):
        qc = QuantumCircuit(1)
        qc.x(0)
        nm = NoiseModel()
        nm.add_gate_error(pauli_error([("X", 0.0001)]), "x")
        override = {("x", (0,)): amplitude_damping_channel(0.4)}
        rho = simulate_density(qc, nm, exact_channels=override)
        assert rho.probabilities()[0] == pytest.approx(0.4)

    def test_reset_channel(self):
        qc = QuantumCircuit(1)
        qc.x(0)
        qc.reset(0)
        rho = simulate_density(qc)
        np.testing.assert_allclose(rho.probabilities(), [1.0, 0.0], atol=1e-12)

    def test_trace_preserved_under_noise(self):
        qc = ghz_circuit(3, measure=False)
        nm = NoiseModel()
        nm.add_gate_error(depolarizing_error(0.1, 2), "cx")
        nm.add_gate_error(depolarizing_error(0.02, 1), "h")
        rho = simulate_density(qc, nm)
        assert rho.trace() == pytest.approx(1.0, abs=1e-10)

    def test_noise_reduces_ghz_fidelity_monotonically(self):
        qc = ghz_circuit(3, measure=False)
        target = simulate_statevector(qc)
        fidelities = []
        for p in (0.0, 0.05, 0.15):
            nm = NoiseModel()
            nm.add_gate_error(depolarizing_error(p, 2), "cx")
            rho = simulate_density(qc, nm)
            fidelities.append(rho.fidelity_pure(target))
        assert fidelities[0] == pytest.approx(1.0)
        assert fidelities[0] > fidelities[1] > fidelities[2]
