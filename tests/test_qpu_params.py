"""Tests for calibration snapshots and the derived noise model."""

import pytest

from repro.errors import CalibrationError, TopologyError
from repro.qpu.params import (
    NOMINAL,
    CalibrationSnapshot,
    CouplerParams,
    QubitParams,
    nominal_calibration,
)
from repro.qpu.topology import Topology


def make_qubit(**overrides):
    base = dict(
        t1=40e-6, t2=30e-6, prx_error=1e-3, readout_error_0=0.02, readout_error_1=0.03
    )
    base.update(overrides)
    return QubitParams(**base)


class TestQubitParams:
    def test_fidelities(self):
        qp = make_qubit()
        assert qp.prx_fidelity == pytest.approx(0.999)
        assert qp.readout_fidelity == pytest.approx(0.975)

    def test_unphysical_t2_rejected(self):
        with pytest.raises(CalibrationError):
            make_qubit(t1=10e-6, t2=25e-6)

    def test_negative_t1_rejected(self):
        with pytest.raises(CalibrationError):
            make_qubit(t1=-1e-6)

    def test_readout_object(self):
        ro = make_qubit().readout()
        assert ro.p_meas1_given0 == 0.02


class TestSnapshot:
    def test_nominal_matches_topology(self, grid20):
        snap = nominal_calibration(grid20, rng=0)
        assert len(snap.qubits) == 20
        assert set(snap.couplers) == set(grid20.couplers)

    def test_qubit_count_mismatch_rejected(self, grid20):
        snap = nominal_calibration(grid20, rng=0)
        with pytest.raises(CalibrationError):
            CalibrationSnapshot(
                topology=grid20,
                qubits=snap.qubits[:-1],
                couplers=dict(snap.couplers),
            )

    def test_coupler_mismatch_rejected(self, grid20):
        snap = nominal_calibration(grid20, rng=0)
        couplers = dict(snap.couplers)
        couplers.pop(next(iter(couplers)))
        with pytest.raises(CalibrationError):
            CalibrationSnapshot(
                topology=grid20, qubits=snap.qubits, couplers=couplers
            )

    def test_medians_near_nominal(self, grid20):
        snap = nominal_calibration(grid20, rng=1, spread=0.05)
        assert snap.median_prx_fidelity() == pytest.approx(
            1 - NOMINAL["prx_error"], abs=2e-4
        )
        assert snap.median_cz_fidelity() == pytest.approx(
            1 - NOMINAL["cz_error"], abs=2e-3
        )
        assert snap.median_t1() == pytest.approx(NOMINAL["t1"], rel=0.15)

    def test_coupler_params_symmetric_lookup(self, snapshot):
        a, b = next(iter(snapshot.couplers))
        assert snapshot.coupler_params(b, a) is snapshot.coupler_params(a, b)

    def test_coupler_params_missing(self, snapshot):
        with pytest.raises(TopologyError):
            snapshot.coupler_params(0, 19)

    def test_gate_durations(self, snapshot):
        assert snapshot.gate_duration("prx", [0]) == pytest.approx(20e-9)
        a, b = next(iter(snapshot.couplers))
        assert snapshot.gate_duration("cz", [a, b]) == pytest.approx(40e-9)
        assert snapshot.gate_duration("measure", [0]) == pytest.approx(1.5e-6)
        assert snapshot.gate_duration("reset", [0]) == pytest.approx(300e-6)
        assert snapshot.gate_duration("rz", [0]) == 0.0  # virtual

    def test_summary_keys(self, snapshot):
        s = snapshot.summary()
        assert set(s) == {
            "median_prx_fidelity",
            "median_cz_fidelity",
            "median_readout_fidelity",
            "median_t1",
            "median_t2",
        }

    def test_worst_qubit(self, snapshot):
        worst = snapshot.worst_qubit()
        worst_fid = snapshot.qubits[worst].prx_fidelity
        assert all(q.prx_fidelity >= worst_fid for q in snapshot.qubits)

    def test_with_updates(self, snapshot):
        new_q = make_qubit(prx_error=0.2)
        updated = snapshot.with_updates(qubits={3: new_q}, timestamp=99.0)
        assert updated.qubits[3].prx_error == 0.2
        assert updated.timestamp == 99.0
        assert snapshot.qubits[3].prx_error != 0.2  # original untouched


class TestNoiseModelCompilation:
    def test_noise_model_has_all_gates(self, snapshot):
        nm = snapshot.as_noise_model()
        assert nm.error_for("prx", [0]) is not None
        a, b = next(iter(snapshot.couplers))
        assert nm.error_for("cz", [a, b]) is not None
        assert nm.readout_for(0) is not None

    def test_noise_rates_scale_with_snapshot(self, grid20):
        snap = nominal_calibration(grid20, rng=2)
        bad = snap.with_updates(qubits={0: make_qubit(prx_error=0.1)})
        nm = bad.as_noise_model()
        err = nm.error_for("prx", [0])
        assert err.total_probability > 0.09

    def test_uncoupled_cz_has_no_error_entry(self, snapshot):
        nm = snapshot.as_noise_model()
        assert nm.error_for("cz", [0, 19]) is None
