"""Tests for the circuit dependency DAG."""

import pytest

from repro.circuits import QuantumCircuit, ghz_circuit
from repro.circuits.dag import CircuitDag, layers


class TestDagStructure:
    def test_independent_gates_no_edges(self):
        qc = QuantumCircuit(2)
        qc.h(0).h(1)
        dag = CircuitDag(qc)
        assert dag.nodes[0].predecessors == []
        assert dag.nodes[1].predecessors == []

    def test_chain_dependencies(self):
        qc = ghz_circuit(3, measure=False)
        dag = CircuitDag(qc)
        # cx(0,1) depends on h(0); cx(1,2) depends on cx(0,1)
        assert dag.nodes[1].predecessors == [0]
        assert dag.nodes[2].predecessors == [1]

    def test_two_qubit_joins_dependencies(self):
        qc = QuantumCircuit(2)
        qc.h(0).h(1).cz(0, 1)
        dag = CircuitDag(qc)
        assert dag.nodes[2].predecessors == [0, 1]

    def test_successors_mirror_predecessors(self):
        qc = ghz_circuit(4)
        dag = CircuitDag(qc)
        for node in dag:
            for p in node.predecessors:
                assert node.index in dag.nodes[p].successors

    def test_front_layer(self):
        qc = QuantumCircuit(3)
        qc.h(0).h(1).cx(0, 1).h(2)
        front = CircuitDag(qc).front_layer()
        assert sorted(n.index for n in front) == [0, 1, 3]

    def test_barrier_orders_across_qubits(self):
        qc = QuantumCircuit(2)
        qc.h(0)
        qc.barrier()
        qc.h(1)
        dag = CircuitDag(qc)
        assert dag.nodes[2].predecessors == [1]  # h(1) waits on barrier


class TestLayers:
    def test_ghz_layer_count_matches_depth(self):
        qc = ghz_circuit(4, measure=False)
        assert len(CircuitDag(qc).layers()) == qc.depth()

    def test_parallel_single_layer(self):
        qc = QuantumCircuit(4)
        for q in range(4):
            qc.x(q)
        ls = layers(qc)
        assert len(ls) == 1 and len(ls[0]) == 4

    def test_layers_partition_all_instructions(self):
        qc = ghz_circuit(5)
        total = sum(len(layer) for layer in CircuitDag(qc).layers())
        assert total == len(qc)


class TestCriticalPath:
    def test_uniform_durations(self):
        qc = ghz_circuit(3, measure=False)
        dag = CircuitDag(qc)
        assert dag.critical_path_length(lambda inst: 1.0) == pytest.approx(3.0)

    def test_weighted_durations(self):
        qc = QuantumCircuit(2)
        qc.h(0).cx(0, 1)
        dag = CircuitDag(qc)
        dur = {"h": 2.0, "cx": 5.0}
        assert dag.critical_path_length(
            lambda inst: dur[inst.name]
        ) == pytest.approx(7.0)

    def test_parallel_max_not_sum(self):
        qc = QuantumCircuit(2)
        qc.h(0).h(1)
        dag = CircuitDag(qc)
        assert dag.critical_path_length(lambda inst: 3.0) == pytest.approx(3.0)
