"""Tests for symbolic circuit parameters."""

import pytest

from repro.circuits.parameters import (
    Parameter,
    ParameterExpression,
    bind_value,
    make_binding,
    numeric_value,
    parameters_of,
)
from repro.errors import ParameterError


class TestParameter:
    def test_same_name_distinct_identity(self):
        a, b = Parameter("x"), Parameter("x")
        assert a != b
        assert hash(a) != hash(b) or a is not b

    def test_name(self):
        assert Parameter("theta").name == "theta"

    def test_parameters_of_self(self):
        p = Parameter("p")
        assert parameters_of(p) == frozenset({p})

    def test_parameters_of_numeric(self):
        assert parameters_of(1.5) == frozenset()


class TestExpressionArithmetic:
    def test_add_scalar(self):
        p = Parameter("p")
        e = p + 2.0
        assert e.bind({p: 1.0}) == 3.0

    def test_radd(self):
        p = Parameter("p")
        assert (2.0 + p).bind({p: 1.0}) == 3.0

    def test_sub_and_rsub(self):
        p = Parameter("p")
        assert (p - 1.0).bind({p: 3.0}) == 2.0
        assert (1.0 - p).bind({p: 3.0}) == -2.0

    def test_mul_div(self):
        p = Parameter("p")
        assert (3.0 * p).bind({p: 2.0}) == 6.0
        assert (p / 2.0).bind({p: 3.0}) == 1.5

    def test_neg(self):
        p = Parameter("p")
        assert (-p).bind({p: 2.0}) == -2.0

    def test_combined_affine(self):
        a, b = Parameter("a"), Parameter("b")
        e = 2.0 * a - b + 1.0
        assert e.bind({a: 1.0, b: 3.0}) == 0.0

    def test_mul_expression_by_expression_rejected(self):
        a, b = Parameter("a"), Parameter("b")
        with pytest.raises(TypeError):
            _ = a * b

    def test_zero_coefficient_drops_parameter(self):
        p = Parameter("p")
        e = p - p
        assert e.is_numeric()
        assert e.numeric() == 0.0


class TestBinding:
    def test_partial_bind(self):
        a, b = Parameter("a"), Parameter("b")
        e = a + b
        partial = e.bind({a: 1.0})
        assert isinstance(partial, ParameterExpression)
        assert partial.bind({b: 2.0}) == 3.0

    def test_numeric_raises_on_free(self):
        p = Parameter("p")
        with pytest.raises(ParameterError):
            (p + 1.0).numeric()

    def test_bind_value_numeric_passthrough(self):
        assert bind_value(2.0, {}) == 2.0

    def test_numeric_value(self):
        p = Parameter("p")
        assert numeric_value((p + 1.0).bind({p: 1.0})) == 2.0
        assert numeric_value(5) == 5.0

    def test_make_binding_checks_length(self):
        p, q = Parameter("p"), Parameter("q")
        binding = make_binding([p, q], [1.0, 2.0])
        assert binding[p] == 1.0 and binding[q] == 2.0
        with pytest.raises(ParameterError):
            make_binding([p, q], [1.0])

    def test_equality_with_scalar(self):
        p = Parameter("p")
        assert (p - p + 3.0) == 3.0

    def test_coefficient_lookup(self):
        p = Parameter("p")
        e = 2.5 * p + 1.0
        assert e.coefficient(p) == 2.5
        assert e.offset == 1.0

    def test_repr_contains_name(self):
        p = Parameter("alpha")
        assert "alpha" in repr(2.0 * p + 1.0)
