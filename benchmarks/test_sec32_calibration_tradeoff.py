"""Section 3.2 — quick (40 min) vs full (100 min) recalibration.

Paper claim: "while quick recalibration offers faster turnaround times
(40 minutes), it generally results in lower system performance, whereas
the full recalibration procedure (100 minutes), though slower, yields
optimal system performance."

The bench drifts identically-seeded devices for several days, applies
each procedure, and compares (a) the time spent and (b) the restored
fidelity medians plus an executed GHZ health-check score.
"""

import pytest

from benchmarks.conftest import report
from repro.calibration import ghz_benchmark
from repro.qpu import (
    FULL_CALIBRATION_DURATION,
    QUICK_CALIBRATION_DURATION,
    QPUDevice,
)
from repro.utils.units import DAY, MINUTE

DRIFT_DAYS = 6
SEEDS = (11, 22, 33)


def run_tradeoff(seed: int):
    out = {}
    for kind in ("none", "quick", "full"):
        device = QPUDevice(seed=seed)
        device.advance_time(DRIFT_DAYS * DAY)
        duration = 0.0
        if kind != "none":
            duration = device.calibrate(kind)
        snap = device.calibration()
        health = ghz_benchmark(device, 5, shots=1500)
        out[kind] = {
            "duration_min": duration / MINUTE,
            "prx": snap.median_prx_fidelity(),
            "ro": snap.median_readout_fidelity(),
            "cz": snap.median_cz_fidelity(),
            "ghz5": health.score,
        }
    return out


def test_sec32_calibration_tradeoff(benchmark):
    runs = benchmark.pedantic(
        lambda: [run_tradeoff(s) for s in SEEDS], rounds=1, iterations=1
    )
    mean = {
        kind: {
            key: sum(r[kind][key] for r in runs) / len(runs)
            for key in runs[0][kind]
        }
        for kind in ("none", "quick", "full")
    }
    lines = [
        f"{'procedure':>10s} {'duration':>9s} {'1q fid':>8s} {'readout':>8s} "
        f"{'CZ fid':>8s} {'GHZ-5':>7s}"
    ]
    for kind in ("none", "quick", "full"):
        m = mean[kind]
        lines.append(
            f"{kind:>10s} {m['duration_min']:>6.0f}min {m['prx']:>8.5f} "
            f"{m['ro']:>8.4f} {m['cz']:>8.4f} {m['ghz5']:>7.3f}"
        )
    lines.append("")
    lines.append(
        "paper: quick = 40 min, lower performance; full = 100 min, optimal."
    )
    report("sec32_calibration_tradeoff", "\n".join(lines))

    # the paper's exact durations
    assert mean["quick"]["duration_min"] == pytest.approx(40.0)
    assert mean["full"]["duration_min"] == pytest.approx(100.0)
    assert FULL_CALIBRATION_DURATION / QUICK_CALIBRATION_DURATION == pytest.approx(2.5)
    # both procedures beat doing nothing
    assert mean["quick"]["cz"] > mean["none"]["cz"]
    assert mean["full"]["cz"] > mean["none"]["cz"]
    # quick restores 1q/readout to near-full levels…
    assert mean["quick"]["prx"] == pytest.approx(mean["full"]["prx"], abs=3e-3)
    assert mean["quick"]["ro"] == pytest.approx(mean["full"]["ro"], abs=1.5e-2)
    # …but full yields the better two-qubit (and hence GHZ) performance
    assert mean["full"]["cz"] > mean["quick"]["cz"]
    assert mean["full"]["ghz5"] >= mean["quick"]["ghz5"] - 0.02
