"""Extension experiment — error mitigation (Section 4's training topic).

Not a numbered paper artifact, but Section 4 reports teaching early
users "error mitigation methods tailored to the machine".  On this
device readout is the dominant error channel (as on the real system),
so the highest-value technique is measurement-error mitigation.  The
bench quantifies what the training buys: GHZ population fidelity and
⟨Z…Z⟩ witness values, raw vs mitigated, on the full stack.

Expected shape: mitigation recovers most of the readout-induced loss;
the residual gap to 1.0 is gate (CZ) error, which mitigation of this
kind cannot touch.
"""

import pytest

from benchmarks.conftest import report
from repro.circuits import ghz_circuit
from repro.hybrid.mitigation import (
    calibrate_readout,
    mitigate_counts,
    mitigated_expectation_z,
)
from repro.middleware import MQSSClient
from repro.qpu import QPUDevice
from repro.scheduler import QuantumResourceManager

SIZES = (2, 3, 4)
SHOTS = 6000


def run_mitigation_study():
    device = QPUDevice(seed=888)
    client = MQSSClient(QuantumResourceManager(device), context="hpc")
    runner = lambda qc, shots: client.run(qc, shots=shots)
    rows = []
    for size in SIZES:
        cal = calibrate_readout(runner, size, shots=SHOTS)
        counts = runner(ghz_circuit(size), SHOTS).marginal(list(range(size)))
        raw_fid = counts.ghz_fidelity_estimate()
        table = mitigate_counts(counts, cal)
        mit_fid = table.get("0" * size, 0.0) + table.get("1" * size, 0.0)
        raw_zz = counts.expectation_z()
        mit_zz = mitigated_expectation_z(counts, cal)
        rows.append((size, cal.mean_assignment_fidelity(), raw_fid, mit_fid, raw_zz, mit_zz))
    return rows


def test_ext_readout_mitigation(benchmark):
    rows = benchmark.pedantic(run_mitigation_study, rounds=1, iterations=1)
    lines = [
        f"{'GHZ':>4} {'assign fid':>11} {'raw pop':>8} {'mitigated':>10} "
        f"{'raw ⟨Z…Z⟩':>10} {'mit ⟨Z…Z⟩':>10}"
    ]
    for size, afid, raw, mit, rzz, mzz in rows:
        lines.append(
            f"{size:>4} {afid:>11.4f} {raw:>8.3f} {mit:>10.3f} {rzz:>10.3f} {mzz:>10.3f}"
        )
    lines.append("")
    lines.append(
        "mitigation recovers the readout loss; the residual gap to 1.0 is "
        "gate error (grows with GHZ size — more CZs on the chain)."
    )
    report("ext_readout_mitigation", "\n".join(lines))

    for size, _afid, raw, mit, rzz, mzz in rows:
        assert mit > raw + 0.02, f"GHZ-{size}: mitigation should help"
        if size % 2 == 0:
            # even GHZ: ideal ⟨Z…Z⟩ = 1, mitigation must move toward it
            # (odd GHZ has ideal 0, where the comparison is noise-limited)
            assert mzz >= rzz - 1e-9
    # residual (gate) error grows with size: mitigated fidelity decreasing
    mitigated = [row[3] for row in rows]
    assert mitigated[0] > mitigated[-1]
