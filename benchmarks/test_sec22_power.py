"""Section 2.2 — power consumption: QPU vs Cray EX4000 cabinet.

Paper numbers: the 20-qubit system peaks at 30 kW during cooldown; a
Cray EX4000 cabinet draws up to 141 kVA (~140 kW); the Cray EX cooling
infrastructure supports 1.2 MW per four cabinets (~300 kW/cabinet).
Conclusion: "existing HPC centers will have sufficient electrical power
capacity for deploying superconducting quantum computers."
"""

import pytest

from benchmarks.conftest import report
from repro.facility.power import (
    HPCCabinetModel,
    QPUPowerModel,
    QPUPowerPhase,
    fits_in_hpc_budget,
    power_comparison,
)
from repro.utils.units import DAY, HOUR, KILOWATT


def test_sec22_power_comparison(benchmark):
    rows = benchmark.pedantic(power_comparison, rounds=1, iterations=1)
    lines = [f"{'system':42s} {'power':>9s} {'× QPU peak':>11s}"]
    for row in rows:
        lines.append(
            f"{row['system']:42s} {row['power_kw']:7.0f} kW {row['vs_qpu_peak']:>10.1f}×"
        )
    qpu, cabinet = QPUPowerModel(), HPCCabinetModel()
    cooldown_energy = qpu.energy([(QPUPowerPhase.COOLDOWN, 3 * DAY)])
    lines.append("")
    lines.append(
        f"3-day cooldown energy: {cooldown_energy / 3.6e6:.0f} kWh "
        f"(≈ {cooldown_energy / (cabinet.real_power * 3 * DAY) * 100:.0f}% of what "
        "one cabinet would draw over the same period)"
    )
    lines.append(f"fits inside one cabinet's power budget: {fits_in_hpc_budget()}")
    report("sec22_power", "\n".join(lines))

    by_system = {r["system"]: r for r in rows}
    # paper's headline numbers
    assert by_system["20-qubit QPU (cooldown peak)"]["power_kw"] == pytest.approx(30.0)
    assert by_system["Cray EX4000 cabinet (max draw)"]["power_kw"] == pytest.approx(140.0)
    assert by_system["Cray EX4000 cabinet (cooling envelope)"]["power_kw"] == pytest.approx(300.0)
    # who wins: the QPU is a ~4.7× lighter load than one cabinet
    assert by_system["Cray EX4000 cabinet (max draw)"]["vs_qpu_peak"] == pytest.approx(
        4.67, abs=0.05
    )
    assert fits_in_hpc_budget()


def test_sec22_heat_sinks(benchmark):
    """The three sinks of Section 2.2: electrical, room air, cooling water."""
    qpu = QPUPowerModel()

    def split():
        return {
            phase: (qpu.heat_to_air(phase), qpu.heat_to_water(phase))
            for phase in QPUPowerPhase
        }

    sinks = benchmark.pedantic(split, rounds=1, iterations=1)
    air, water = sinks[QPUPowerPhase.STEADY]
    # the cryogenic plant dominates the heat budget
    assert water > air
    assert air + water <= qpu.draw(QPUPowerPhase.STEADY)
