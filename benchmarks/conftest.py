"""Benchmark-suite helpers.

Every bench regenerates one table/figure of the paper (see DESIGN.md's
experiment index).  Output goes two places: the captured stdout (run
pytest with ``-s`` to watch) and ``benchmarks/out/<experiment>.txt`` so
EXPERIMENTS.md can cite the artifacts.
"""

from __future__ import annotations

import pathlib

import pytest

OUT_DIR = pathlib.Path(__file__).parent / "out"


def report(experiment: str, text: str) -> None:
    """Print and persist one experiment's output table."""
    OUT_DIR.mkdir(exist_ok=True)
    banner = f"\n{'=' * 72}\n{experiment}\n{'=' * 72}\n"
    body = banner + text + "\n"
    print(body)
    (OUT_DIR / f"{experiment}.txt").write_text(body)


@pytest.fixture
def device20():
    from repro.qpu import QPUDevice

    return QPUDevice(seed=314)
