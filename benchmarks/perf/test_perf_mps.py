"""Perf microbenchmarks for the matrix-product-state engine.

CI-sized counterparts of the ``mps_brickwork`` / ``mps_qaoa_wide``
lanes in ``scripts/bench.py``: the assertions are deliberately loose
sanity floors (exact numbers belong to the harness), but they do pin
the engine ordering — MPS must not be slower than the fast dense engine
on shallow brickwork grouped sampling at device-plus width — and the
flagship feasibility: a 64-qubit branching-tail circuit, infeasible on
every other non-Clifford path, must sample interactively with zero
truncation loss at the default bond cap.
"""

import time

from benchmarks.conftest import report
from repro.circuits import brickwork_circuit
from repro.simulator import (
    NoiseModel,
    depolarizing_error,
    engine_mode as _engine,
    prepare_engine,
    sample_counts,
)

#: Wall-clock assertions tolerate this much CI noise before going red.
TIMING_SLACK = 1.5


def _best_of(fn, repeats=2):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _noise():
    nm = NoiseModel()
    nm.add_gate_error(depolarizing_error(0.002, 2), "cz")
    nm.add_gate_error(depolarizing_error(0.001, 1), "ry")
    return nm


def test_perf_mps_vs_dense_brickwork():
    """The MPS engine must not be slower than the fast dense engine on
    shallow-brickwork grouped sampling: dense pays a 2^n copy + replay
    per trajectory group, MPS forks O(n·chi²) tensors."""
    circuit = brickwork_circuit(18, 4)
    noise = _noise()
    shots = 192

    def run():
        sample_counts(circuit, shots, noise=noise, rng=7)

    with _engine("fast"):
        dense = _best_of(run)
    with _engine("mps"):
        mps = _best_of(run)

    lines = [
        f"brickwork-18 x4, {shots} shots, depolarizing noise, grouped path",
        f"dense fast : {dense * 1e3:8.2f} ms   ({shots / dense:8.0f} shots/s)",
        f"mps        : {mps * 1e3:8.2f} ms   ({shots / mps:8.0f} shots/s)",
        f"speedup    : {dense / mps:8.2f} x",
    ]
    report("perf_mps_engine", "\n".join(lines))
    assert mps <= dense * TIMING_SLACK, (
        "MPS engine slower than dense fast engine on shallow brickwork sampling"
    )


def test_perf_mps_wide_brickwork_feasibility():
    """The flagship capability: 64-qubit shallow brickwork — branching
    tail, beyond dense/hybrid/tableau alike — samples interactively on
    the MPS engine with zero truncation at the default chi."""
    circuit = brickwork_circuit(64, 4, seed=1)
    with _engine("mps"):
        start = time.perf_counter()
        counts = sample_counts(circuit, 512, noise=_noise(), rng=7)
        wide_seconds = time.perf_counter() - start
        engine = prepare_engine(circuit, "mps")
    assert counts.shots == 512
    report(
        "perf_mps_wide",
        (
            f"brickwork-64 x4 (beyond dense limit): "
            f"{wide_seconds * 1e3:8.2f} ms for 512 shots, "
            f"max bond {engine.max_bond_dimension}, "
            f"truncation error {engine.truncation_error:.3g}"
        ),
    )
    assert wide_seconds < 30.0, "wide MPS sampling left the interactive regime"
    assert engine.truncation_error == 0.0
