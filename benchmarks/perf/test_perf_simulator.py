"""Perf microbenchmarks for the fast-kernel simulation engine.

Complements ``scripts/bench.py`` (the standalone harness that emits
``BENCH_simulator.json``): these run inside the benchmark suite at small,
CI-friendly sizes and persist a table to ``benchmarks/out/`` for local
inspection.  Unlike the paper-reproduction artifacts, these timing
tables are machine- and load-dependent, so ``benchmarks/out/perf_*.txt``
is gitignored — the authoritative before/after numbers live in
``BENCH_simulator.json``, which records the machine that produced them.
The
assertions are deliberately loose sanity floors — exact numbers belong
to the harness — but they do pin the engine's ordering: fast kernels
must not be slower than the generic path, and prefix-sharing must not be
slower than from-scratch trajectory groups.
"""

import time

import numpy as np

from benchmarks.conftest import report
from repro.circuits import ghz_circuit
from repro.circuits.gates import cx_matrix, rz_matrix, spec
from repro.simulator import (
    NoiseModel,
    depolarizing_error,
    engine_mode as _engine,
    sample_counts,
)
from repro.simulator.statevector import StateVector

NUM_QUBITS = 14
GATE_REPS = 40

#: Wall-clock assertions tolerate this much CI noise before going red.
TIMING_SLACK = 1.5


def _best_of(fn, repeats=3):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _gate_loop(matrix, arity):
    def run():
        sv = StateVector(NUM_QUBITS)
        for i in range(GATE_REPS):
            if arity == 1:
                sv.apply_matrix(matrix, [i % NUM_QUBITS])
            else:
                sv.apply_matrix(matrix, [i % NUM_QUBITS, (i + 1) % NUM_QUBITS])

    return run


def test_perf_gate_kernels():
    cases = [
        ("h (dense 1q)", spec("h").matrix(), 1),
        ("rz (diag 1q)", rz_matrix(0.37), 1),
        ("cx (perm 2q)", cx_matrix(), 2),
        ("cz (diag 2q)", spec("cz").matrix(), 2),
    ]
    lines = [f"{'kernel':<16s} {'generic':>10s} {'fast':>10s} {'speedup':>8s}"]
    for label, matrix, arity in cases:
        run = _gate_loop(matrix, arity)
        with _engine("baseline"):
            generic = _best_of(run)
        with _engine("fast"):
            fast = _best_of(run)
        lines.append(
            f"{label:<16s} {generic * 1e3:>8.2f}ms {fast * 1e3:>8.2f}ms "
            f"{generic / fast:>7.2f}x"
        )
        assert fast <= generic * TIMING_SLACK, (
            f"{label}: fast kernel slower than generic"
        )
    report("perf_gate_kernels", "\n".join(lines))


def test_perf_prefix_sharing_sampler():
    circuit = ghz_circuit(12)
    noise = NoiseModel()
    noise.add_gate_error(depolarizing_error(0.01, 2), "cx")
    noise.add_gate_error(depolarizing_error(0.005, 1), "h")
    shots = 256

    def run():
        sample_counts(circuit, shots, noise=noise, rng=7)

    with _engine("baseline"):
        baseline = _best_of(run, repeats=2)
    with _engine("fast"):
        fast = _best_of(run, repeats=2)
    lines = [
        f"GHZ-12, {shots} shots, depolarizing noise, grouped path",
        f"seed engine : {baseline * 1e3:8.2f} ms   "
        f"({shots / baseline:8.0f} shots/s)",
        f"fast engine : {fast * 1e3:8.2f} ms   ({shots / fast:8.0f} shots/s)",
        f"speedup     : {baseline / fast:8.2f} x",
    ]
    report("perf_prefix_sharing", "\n".join(lines))
    assert fast <= baseline * TIMING_SLACK, (
        "prefix-sharing engine slower than seed engine"
    )


def test_perf_stabilizer_vs_dense():
    """The tableau backend must beat the fast dense engine on Clifford
    grouped sampling, and stay interactive at widths the dense engine
    cannot represent at all."""
    circuit = ghz_circuit(12)
    noise = NoiseModel()
    noise.add_gate_error(depolarizing_error(0.01, 2), "cx")
    noise.add_gate_error(depolarizing_error(0.005, 1), "h")
    shots = 256

    def run():
        sample_counts(circuit, shots, noise=noise, rng=7)

    with _engine("fast"):
        dense = _best_of(run, repeats=2)
    with _engine("stabilizer"):
        stab = _best_of(run, repeats=2)

    wide = ghz_circuit(64)
    with _engine("stabilizer"):
        start = time.perf_counter()
        sample_counts(wide, shots, noise=noise, rng=7)
        wide_seconds = time.perf_counter() - start

    lines = [
        f"GHZ-12, {shots} shots, depolarizing noise, grouped path",
        f"dense fast : {dense * 1e3:8.2f} ms   ({shots / dense:8.0f} shots/s)",
        f"stabilizer : {stab * 1e3:8.2f} ms   ({shots / stab:8.0f} shots/s)",
        f"speedup    : {dense / stab:8.2f} x",
        f"GHZ-64 (beyond dense limit): {wide_seconds * 1e3:8.2f} ms",
    ]
    report("perf_stabilizer_engine", "\n".join(lines))
    assert stab <= dense * TIMING_SLACK, (
        "stabilizer engine slower than dense fast engine on Clifford sampling"
    )
    assert wide_seconds < 30.0, "wide Clifford sampling left the interactive regime"


def test_perf_hybrid_segment():
    """Segment-granular mixed execution must beat the fast dense engine
    on Clifford-prefix + non-Clifford-tail grouped sampling, and stay
    interactive at widths the dense engine cannot represent at all.

    14 qubits is past the hybrid/dense crossover (per-group tableau
    conversion overhead loses to `2^n` forks from ~13 qubits up), so the
    ordering assertion holds with real margin at CI-friendly cost."""
    num_qubits = 14
    circuit = ghz_circuit(num_qubits, measure=False)
    for q in range(num_qubits):
        circuit.t(q)
    circuit.measure_all()
    noise = NoiseModel()
    noise.add_gate_error(depolarizing_error(0.01, 2), "cx")
    noise.add_gate_error(depolarizing_error(0.005, 1), "h")
    shots = 256

    def run():
        sample_counts(circuit, shots, noise=noise, rng=7)

    with _engine("fast"):
        dense = _best_of(run, repeats=2)
    with _engine("hybrid"):
        hybrid = _best_of(run, repeats=2)

    wide = ghz_circuit(40, measure=False)
    for q in range(40):
        wide.t(q)
    wide.measure_all()
    with _engine("hybrid"):
        start = time.perf_counter()
        sample_counts(wide, shots, noise=noise, rng=7)
        wide_seconds = time.perf_counter() - start

    lines = [
        f"GHZ-{num_qubits} + T layer, {shots} shots, depolarizing noise, grouped path",
        f"dense fast : {dense * 1e3:8.2f} ms   ({shots / dense:8.0f} shots/s)",
        f"hybrid     : {hybrid * 1e3:8.2f} ms   ({shots / hybrid:8.0f} shots/s)",
        f"speedup    : {dense / hybrid:8.2f} x",
        f"GHZ-40 + T layer (beyond dense limit): {wide_seconds * 1e3:8.2f} ms",
    ]
    report("perf_hybrid_segment", "\n".join(lines))
    assert hybrid <= dense * TIMING_SLACK, (
        "hybrid segment engine slower than dense fast engine on GHZ+T sampling"
    )
    assert wide_seconds < 30.0, "wide hybrid sampling left the interactive regime"


def test_perf_sample_bit_extraction():
    """Vectorized shift-and-mask shot extraction stays sub-millisecond
    per 10k shots at device width."""
    sv = StateVector(20)
    for q in range(20):
        sv.apply_matrix(spec("h").matrix(), [q])
    rng = np.random.default_rng(0)
    start = time.perf_counter()
    bits = sv.sample(10_000, rng)
    elapsed = time.perf_counter() - start
    assert bits.shape == (10_000, 20)
    report(
        "perf_sample_extraction",
        f"10k shots x 20 qubits sampled+extracted in {elapsed * 1e3:.2f} ms",
    )


def test_perf_packed_vs_uint8_tableau():
    """The bit-packed word-parallel tableau must not be slower than the
    uint8 tableau on wide Clifford grouped sampling, and must keep
    1024-qubit GHZ sampling interactive (the dense engine caps at 26)."""
    circuit = ghz_circuit(100)
    noise = NoiseModel()
    noise.add_gate_error(depolarizing_error(0.01, 2), "cx")
    noise.add_gate_error(depolarizing_error(0.005, 1), "h")
    shots = 256

    def run():
        sample_counts(circuit, shots, noise=noise, rng=7)

    with _engine("stabilizer", tableau_impl="unpacked"):
        uint8 = _best_of(run, repeats=2)
    with _engine("stabilizer", tableau_impl="packed"):
        packed = _best_of(run, repeats=2)

    wide = ghz_circuit(1024)
    with _engine("stabilizer"):  # auto policy: packed at this width
        start = time.perf_counter()
        sample_counts(wide, shots, noise=noise, rng=7)
        wide_seconds = time.perf_counter() - start

    lines = [
        f"GHZ-100, {shots} shots, depolarizing noise, grouped path",
        f"uint8 tableau  : {uint8 * 1e3:8.2f} ms   ({shots / uint8:8.0f} shots/s)",
        f"packed tableau : {packed * 1e3:8.2f} ms   ({shots / packed:8.0f} shots/s)",
        f"speedup        : {uint8 / packed:8.2f} x",
        f"GHZ-1024 (packed, auto policy): {wide_seconds * 1e3:8.2f} ms",
    ]
    report("perf_packed_tableau", "\n".join(lines))
    assert packed <= uint8 * TIMING_SLACK, (
        "packed tableau slower than uint8 tableau on wide Clifford sampling"
    )
    assert wide_seconds < 30.0, "1024-qubit sampling left the interactive regime"


def test_perf_diagonal_run_fusion():
    """Fused diagonal runs must not be slower than per-gate application
    in the dense engine's advance path."""
    from repro.circuits import QuantumCircuit
    from repro.simulator.engines import DenseEngine
    from repro.simulator.engines import dense as dense_mod

    n = 14
    circuit = QuantumCircuit(n, name="diagruns-perf")
    circuit.h(0)
    for q in range(n - 1):
        circuit.cx(q, q + 1)
    for _ in range(6):
        for q in range(n):
            circuit.t(q)
        for q in range(n - 1):
            circuit.cp(0.31, q, q + 1)
        for q in range(n):
            circuit.rz(0.7, q)
    ops = list(circuit)

    def run():
        DenseEngine(circuit).advance(ops)

    with _engine("fast"):
        prev = dense_mod.FUSE_DIAGONAL_RUNS
        try:
            dense_mod.FUSE_DIAGONAL_RUNS = False
            unfused = _best_of(run, repeats=2)
            dense_mod.FUSE_DIAGONAL_RUNS = True
            fused = _best_of(run, repeats=2)
        finally:
            dense_mod.FUSE_DIAGONAL_RUNS = prev

    lines = [
        f"{n}-qubit T/CP/RZ runs, dense advance path",
        f"unfused : {unfused * 1e3:8.2f} ms",
        f"fused   : {fused * 1e3:8.2f} ms",
        f"speedup : {unfused / fused:8.2f} x",
    ]
    report("perf_diagonal_fusion", "\n".join(lines))
    assert fused <= unfused * TIMING_SLACK, (
        "diagonal-run fusion slower than per-gate application"
    )
