"""Perf microbenchmarks for cache-blocked wide-state execution.

CI-sized counterparts of the ``blocked_wide_dense`` /
``batched_wide_grouped`` lanes in ``scripts/bench.py``.  The assertions
are deliberately loose sanity floors (exact numbers belong to the
harness), but they pin the orderings that make blocking worth shipping:

* past the tile width, a deep-brickwork dense advance with blocked
  sweeps on must beat the same advance with them off — the whole win is
  one DRAM pass per window instead of one per item;
* below the tile width the schedule must not engage at all (the plain
  path is already cache-resident, so any blocked overhead there would
  be a regression);
* above the old cache-resident cap, the batched grouped walk riding the
  blocked sweeps must track the scalar fast walk (its benefit is shared
  DRAM traffic, not dispatch, so "no slower than scalar" is the pin).
"""

import time

from benchmarks.conftest import report
from repro.circuits import brickwork_circuit
from repro.simulator import (
    NoiseModel,
    depolarizing_error,
    engine_mode as _engine,
    sample_counts,
)
from repro.simulator.engines import DenseEngine
from repro.simulator.engines import dense as _dense

#: Wall-clock assertions tolerate this much CI noise before going red.
TIMING_SLACK = 1.5


def _best_of(fn, repeats=3):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _advance_seconds(circuit, blocked, repeats=3):
    ops = list(circuit)

    def advance_once():
        DenseEngine(circuit).advance(ops)

    with _engine("fast"):
        prev = _dense.BLOCKED_SWEEPS
        _dense.BLOCKED_SWEEPS = blocked
        try:
            return _best_of(advance_once, repeats)
        finally:
            _dense.BLOCKED_SWEEPS = prev


def test_perf_blocked_sweeps_beat_plain_advance_past_the_tile():
    """Deep brickwork at 16 qubits (two tiles at the default budget):
    every window re-reads 1 MiB of amplitudes per item unblocked, once
    per sweep blocked.  The committed bench floor is 1.3×; here we
    require the blocked lane simply wins with slack."""
    circuit = brickwork_circuit(16, 8, measure=False)
    unblocked = _advance_seconds(circuit, blocked=False)
    blocked = _advance_seconds(circuit, blocked=True)
    report(
        "perf_blocked_wide_dense",
        f"16q x depth-8 brickwork dense advance\n"
        f"unblocked: {unblocked:.4f}s\n"
        f"blocked:   {blocked:.4f}s\n"
        f"speedup:   {unblocked / blocked:.2f}x",
    )
    # measured ~2x on the reference machine; 1.3 is the committed floor
    # and TIMING_SLACK absorbs CI noise on top of it
    assert unblocked >= blocked * 1.3 / TIMING_SLACK, (unblocked, blocked)
    assert blocked <= unblocked  # the blocked lane must win outright


def test_perf_blocked_schedule_stays_off_below_the_tile():
    """At 12 qubits (64 KiB state, well under one tile) the scheduler
    must return no schedule for any window: blocking there could only
    add overhead, never save a DRAM pass."""
    circuit = brickwork_circuit(12, 8, measure=False)
    ops = [inst for inst in circuit]
    partition = _dense.partition_window(ops)
    assert _dense.plan_blocked_window(ops, partition, 12) is None


def test_perf_batched_wide_grouped_tracks_scalar():
    """16-qubit noisy brickwork grouped sampling — the regime above the
    old 13-qubit batched engagement cap.  The wide batched walk rides
    the same blocked sweeps in 4-row chunks; it must stay within CI
    slack of the scalar walk (measured ~parity on the reference
    machine, with identical seeded counts)."""
    circuit = brickwork_circuit(16, 12)
    nm = NoiseModel()
    nm.add_gate_error(depolarizing_error(0.002, 2), "cz")
    nm.add_gate_error(depolarizing_error(0.001, 1), "ry")
    shots = 48

    with _engine("fast"):
        scalar = _best_of(
            lambda: sample_counts(circuit, shots, noise=nm, rng=7), repeats=2
        )
    with _engine("batched"):
        batched = _best_of(
            lambda: sample_counts(circuit, shots, noise=nm, rng=7), repeats=2
        )
    report(
        "perf_batched_wide_grouped",
        f"16q x depth-12 brickwork, {shots} shots, sparse depolarizing\n"
        f"scalar fast: {scalar:.4f}s\n"
        f"batched:     {batched:.4f}s\n"
        f"ratio:       {scalar / batched:.2f}x",
    )
    assert batched <= scalar * TIMING_SLACK, (batched, scalar)
