"""Perf microbenchmarks for batched trajectory execution and sharding.

CI-sized counterparts of the ``batched_ghz_grouped`` /
``sharded_throughput`` lanes in ``scripts/bench.py``.  The assertions
are deliberately loose sanity floors (exact numbers belong to the
harness), but they pin two orderings:

* at a cache-resident width the batched grouped walk must beat the
  scalar fast walk outright (its whole reason to exist is dispatch
  amortization over many stacked trajectory states);
* at 16–20 qubits — beyond the cache-working-set budget — the batched
  walk engages only in the **blocked-wide regime** (register wider than
  a sweep tile *and* realized injection sites sparse enough that the
  lockstep windows can actually block).  GHZ under per-gate noise has a
  site at every gate, so the walk must still disengage there and
  ``engine_mode("batched")`` must track ``"fast"`` exactly; the
  engaged wide path is covered by ``test_perf_blocked.py`` and the
  ``batched_wide_grouped`` bench lane.
"""

import time

from benchmarks.conftest import report
from repro.circuits import ghz_circuit
from repro.simulator import (
    NoiseModel,
    depolarizing_error,
    engine_mode as _engine,
    sample_counts,
    sample_counts_sharded,
)
from repro.simulator import sampler as _sampler

#: Wall-clock assertions tolerate this much CI noise before going red.
TIMING_SLACK = 1.5


def _best_of(fn, repeats=3):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _noise():
    nm = NoiseModel()
    nm.add_gate_error(depolarizing_error(0.02, 2), "cx")
    nm.add_gate_error(depolarizing_error(0.01, 1), "h")
    return nm


def test_perf_batched_beats_scalar_at_cache_resident_width():
    """GHZ-10 grouped sampling, hundreds of trajectory groups: one
    kernel call per lockstep window across ~128 stacked 16 KiB states
    must beat per-group dispatch.  Counts are bit-identical by the
    parity suite, so this is pure dispatch amortization."""
    circuit = ghz_circuit(10)
    noise = _noise()
    shots = 4096

    def run():
        sample_counts(circuit, shots, noise=noise, rng=7)

    with _engine("fast"):
        scalar = _best_of(run)
    with _engine("batched"):
        batched = _best_of(run)

    lines = [
        f"ghz-10, {shots} shots, depolarizing noise, grouped path",
        f"scalar fast : {scalar * 1e3:8.2f} ms   ({shots / scalar:8.0f} shots/s)",
        f"batched     : {batched * 1e3:8.2f} ms   ({shots / batched:8.0f} shots/s)",
        f"speedup     : {scalar / batched:8.2f} x",
    ]
    report("perf_batched_grouped", "\n".join(lines))
    assert batched * 1.2 <= scalar, (
        "batched grouped walk lost to the scalar walk at a cache-resident width"
    )


def test_perf_batched_ordering_holds_at_wide_registers():
    """16–20 qubits with ≥8 trajectory groups: GHZ under per-gate noise
    realizes an injection site at nearly every gate, so the blocked-wide
    window-length gate keeps the batched walk disengaged (fragmented
    windows can't block; unblocked wide rows would run DRAM-bound where
    the scalar walk's suffix sharing wins) and "batched" must track
    "fast" — never trail it beyond timing noise.  In the gap between
    the cache-resident and blocked-wide regimes the walk must also
    disengage regardless of site density: there the scalar walk is
    cache-resident by construction and stacking rows would evict it."""
    import numpy as np

    from repro.simulator.engines import select_engine
    from repro.simulator.engines import dense as _dense

    gap_width = _dense.blocked_tile_qubits()
    gap_circuit = ghz_circuit(gap_width)
    with _engine("batched"):
        assert not _sampler._use_batched_walk(
            select_engine("batched", gap_circuit), gap_circuit, 64
        ), f"batched walk engaged in the regime gap at {gap_width} qubits"
    for num_qubits, shots in ((16, 512), (18, 256), (20, 96)):
        circuit = ghz_circuit(num_qubits)
        noise = _noise()

        def run():
            sample_counts(circuit, shots, noise=noise, rng=7)

        with _engine("fast"):
            scalar = _best_of(run, repeats=2)
        with _engine("batched"):
            # the realized site density must keep the walk disengaged
            noisy = _sampler._noisy_ops(circuit, noise, {})
            groups = _sampler._group_realizations(
                noisy, shots, np.random.default_rng(7)
            )
            ordered = sorted(groups.items(), key=lambda kv: kv[0] or ((1 << 30, 0),))
            assert not _sampler._use_batched_walk(
                select_engine("batched", circuit),
                circuit,
                len(ordered),
                ordered=ordered,
            ), f"batched walk engaged on site-dense ghz-{num_qubits}"
            batched = _best_of(run, repeats=2)
        # the pinned workload produces well over 8 groups
        noisy = _sampler._noisy_ops(circuit, noise, {})
        assert len(noisy) >= 8
        report(
            f"perf_batched_wide_{num_qubits}q",
            (
                f"ghz-{num_qubits}, {shots} shots: scalar "
                f"{scalar * 1e3:.2f} ms, batched {batched * 1e3:.2f} ms "
                f"(ratio {scalar / batched:.2f}x)"
            ),
        )
        assert batched <= scalar * TIMING_SLACK, (
            f"batched mode slower than fast at {num_qubits} qubits despite "
            "scalar fallback"
        )


def test_perf_sharded_throughput_stays_interactive():
    """The sharding layer end to end (block partition, derived streams,
    prefix sharing, merge) on the reference workload: overhead over the
    plain driver must stay small and the whole run interactive."""
    circuit = ghz_circuit(12)
    noise = _noise()
    shots = 2048

    start = time.perf_counter()
    counts = sample_counts_sharded(circuit, shots, noise=noise, seed=7, workers=1)
    seconds = time.perf_counter() - start
    assert counts.shots == shots
    report(
        "perf_sharded_throughput",
        (
            f"ghz-12, {shots} shots, workers=1: {seconds * 1e3:8.2f} ms "
            f"({shots / seconds:8.0f} shots/s)"
        ),
    )
    assert seconds < 30.0, "sharded sampling left the interactive regime"
