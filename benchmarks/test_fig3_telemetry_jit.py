"""Figure 3 — DCDB/QDMI telemetry-aware execution.

Paper artifact: Figure 3 shows QDMI bridging DCDB telemetry into JIT
compilation, "allow[ing] to consume these live data during tasks such as
JIT compilation and environment-aware optimizations", citing that
"just-in-time quantum circuit transpilation can reduce noise".

The bench lets the device drift for two weeks (so qubit quality spreads
out and some couplers degrade), then compiles and runs the same GHZ
program three ways:

* **live JIT** — noise-adaptive placement against the *current* QDMI
  snapshot (the Figure 3 loop);
* **stale**   — noise-adaptive placement against the day-0 snapshot
  (ahead-of-time compilation);
* **static**  — trivial layout, no telemetry at all.

Expected shape: live ≥ stale ≥ static in mean achieved GHZ fidelity
over the seed set (individual seeds carry shot noise); the live path
must beat static by a clear margin.
"""

import pytest

from benchmarks.conftest import report
from repro.circuits import ghz_circuit
from repro.compiler import JITCompiler
from repro.qdmi import QPUQDMIDevice, SnapshotQDMIDevice
from repro.qpu import DriftConfig, QPUDevice
from repro.telemetry import DCDBCollector, MetricStore, QPUMetricsPlugin
from repro.utils.units import DAY

SHOTS = 4000
SIZE = 6
DRIFT_DAYS = 14
SEEDS = (41, 42, 43, 44, 45)


def run_three_ways(seed: int):
    # widen qubit-to-qubit spread so placement has something to exploit
    device = QPUDevice(
        seed=seed,
        drift_config=DriftConfig(sens_2q=2.5e-2, sens_1q=3e-3, miscal_tau=6 * DAY),
    )
    stale_snapshot = device.calibration()
    device.advance_time(DRIFT_DAYS * DAY)
    # telemetry plane (Figure 3's DCDB box)
    store = MetricStore()
    DCDBCollector(store, [QPUMetricsPlugin(device)]).run_cycle(device.time)

    program = ghz_circuit(SIZE)
    outcomes = {}
    compilers = {
        "live_jit": JITCompiler(QPUQDMIDevice(device)),
        "stale": JITCompiler(SnapshotQDMIDevice(stale_snapshot)),
        "static": JITCompiler(QPUQDMIDevice(device), layout_method="trivial"),
    }
    for name, jit in compilers.items():
        artifact = jit.compile(program)
        result = device.execute(artifact.circuit, shots=SHOTS)
        fid = result.counts.marginal(list(range(SIZE))).ghz_fidelity_estimate()
        outcomes[name] = (fid, artifact.result.initial_layout)
    return outcomes


def test_fig3_telemetry_jit(benchmark):
    all_runs = benchmark.pedantic(
        lambda: [run_three_ways(s) for s in SEEDS], rounds=1, iterations=1
    )
    means = {k: 0.0 for k in ("live_jit", "stale", "static")}
    lines = [f"{'seed':>6} {'live JIT':>9} {'stale':>9} {'static':>9}"]
    for seed, outcomes in zip(SEEDS, all_runs):
        lines.append(
            f"{seed:>6} {outcomes['live_jit'][0]:>9.3f} "
            f"{outcomes['stale'][0]:>9.3f} {outcomes['static'][0]:>9.3f}"
        )
        for k in means:
            means[k] += outcomes[k][0] / len(SEEDS)
    lines.append(
        f"{'mean':>6} {means['live_jit']:>9.3f} {means['stale']:>9.3f} "
        f"{means['static']:>9.3f}"
    )
    lines.append("")
    lines.append(
        "claim (Wilson et al., cited in Section 2.6): JIT transpilation "
        "against live calibration data reduces noise — live ≥ stale ≥ static "
        "in mean fidelity across seeds (per-seed values carry shot noise)."
    )
    report("fig3_telemetry_jit", "\n".join(lines))
    # the who-wins shape
    assert means["live_jit"] > means["static"] + 0.01
    assert means["live_jit"] >= means["stale"] - 0.005
