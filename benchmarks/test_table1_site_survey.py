"""Table 1 — site-survey acceptance criteria, executed.

Paper artifact: Table 1 lists the measurement equipment and acceptance
limits for the six environmental quantities.  This bench runs the full
survey on three candidate rooms (one viable, one tram-adjacent, one next
to the chiller plant) and reproduces the table's limit column alongside
measured values, then exercises the site-selection decision.

Expected shape: the quiet basement passes all criteria; the other two
fail on vibration/field criteria; exactly one site is selected.
"""

import pytest

from benchmarks.conftest import report
from repro.facility import SiteProfile, run_survey, select_site
from repro.facility.site_survey import DeliveryPath
from repro.utils.units import HOUR

CANDIDATES = [
    SiteProfile("basement-annex", tram_distance=800, hvac_intensity=0.4, basement=True),
    SiteProfile("street-level-hall", tram_distance=20, road_traffic=2.0),
    SiteProfile("machine-room-west", hvac_intensity=2.6, fluorescent_distance=1.2),
]

PATH = DeliveryPath({"dock": 2.4, "elevator": 1.1, "corridor": 1.0, "door": 0.95})


def run_all_surveys():
    return [
        run_survey(p, rng=99, delivery_path=PATH, floor_load_capacity=1500.0)
        for p in CANDIDATES
    ]


def test_table1_site_survey(benchmark):
    reports = benchmark.pedantic(run_all_surveys, rounds=1, iterations=1)
    lines = []
    for rep in reports:
        lines.append(rep.as_table())
        lines.append("")
    winner, notes = select_site(reports)
    lines.extend(["Selection:"] + [f"  {n}" for n in notes])
    report("table1_site_survey", "\n".join(lines))

    # shape assertions: who passes, who fails, and why
    by_site = {r.site: r for r in reports}
    assert by_site["basement-annex"].passed
    assert not by_site["street-level-hall"].passed
    assert not by_site["machine-room-west"].passed
    assert winner is not None and winner.site == "basement-annex"
    failed_street = {r.measurement for r in by_site["street-level-hall"].failures()}
    assert failed_street & {"Floor vibrations", "DC magnetic field"}


def test_table1_minimum_duration_enforced(benchmark):
    """The ≥ 25 h recording rule is part of Table 1's method column."""
    from repro.errors import SiteSurveyError

    def too_short():
        try:
            run_survey(CANDIDATES[0], duration=10 * HOUR, rng=1)
            return False
        except SiteSurveyError:
            return True

    assert benchmark.pedantic(too_short, rounds=1, iterations=1)
