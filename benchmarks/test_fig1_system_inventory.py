"""Figure 1 — the system and its components, as a model inventory.

Figure 1 of the paper is a hardware photograph (cryostat "chandelier",
measurement rack, gas handling system…); the reproducible counterpart is
the *model inventory*: the 20-qubit square-grid QPU with its couplers,
nominal calibration figures, power phases, and cryogenic envelope — the
quantities every later experiment consumes.
"""

import pytest

from benchmarks.conftest import report
from repro.facility.cryostat import BASE_TEMPERATURE, ROOM_TEMPERATURE
from repro.facility.power import QPUPowerModel, QPUPowerPhase
from repro.qpu import NOMINAL, QPUDevice
from repro.utils.units import KILOWATT, MICROSECOND, NANOSECOND


def build_inventory(device: QPUDevice) -> str:
    snap = device.calibration()
    power = QPUPowerModel()
    lines = [
        "20-qubit superconducting QPU — model inventory",
        "",
        "topology (square grid, tunable couplers on every edge):",
        device.topology.ascii_art(),
        "",
        f"qubits: {device.topology.num_qubits}   couplers: {device.topology.num_couplers}",
        "",
        "nominal calibration medians:",
        f"  T1                 {snap.median_t1() / MICROSECOND:8.1f} µs",
        f"  T2                 {snap.median_t2() / MICROSECOND:8.1f} µs",
        f"  PRX fidelity       {snap.median_prx_fidelity():8.5f}",
        f"  CZ fidelity        {snap.median_cz_fidelity():8.5f}",
        f"  readout fidelity   {snap.median_readout_fidelity():8.5f}",
        "",
        "native operation durations:",
        f"  PRX pulse          {NOMINAL['prx_duration'] / NANOSECOND:8.0f} ns",
        f"  CZ gate            {NOMINAL['cz_duration'] / NANOSECOND:8.0f} ns",
        f"  readout            {NOMINAL['readout_duration'] / MICROSECOND:8.1f} µs",
        f"  passive reset      {NOMINAL['reset_duration'] / MICROSECOND:8.0f} µs",
        "",
        "cryogenics:",
        f"  operating point    {BASE_TEMPERATURE * 1000:.0f} mK",
        f"  ambient            {ROOM_TEMPERATURE:.0f} K",
        "",
        "power envelope:",
        f"  cooldown peak      {power.draw(QPUPowerPhase.COOLDOWN) / KILOWATT:5.0f} kW",
        f"  steady operation   {power.draw(QPUPowerPhase.STEADY) / KILOWATT:5.0f} kW",
        f"  cold idle          {power.draw(QPUPowerPhase.IDLE_COLD) / KILOWATT:5.0f} kW",
    ]
    return "\n".join(lines)


def test_fig1_system_inventory(benchmark, device20):
    text = benchmark.pedantic(build_inventory, args=(device20,), rounds=1, iterations=1)
    report("fig1_system_inventory", text)
    assert "20" in text
    # the paper's device: 20 qubits, square grid, 10 mK, 30 kW peak
    assert device20.topology.num_qubits == 20
    assert device20.topology.num_couplers == 31
    assert "10 mK" in text
    assert "30 kW" in text
