"""Figure 2 — the MQSS architecture: adapters → client → QRM → QDMI.

Paper artifact: Figure 2 draws four front-end adapters converging on one
client that routes to either the REST interface or the HPC interface,
with the QRM (JIT compiler + QDMI) underneath.

The bench submits the *same* GHZ program through all four adapters and
both access paths and verifies Figure 2's architectural promises:

* all adapters produce statistically identical results (one IR below);
* both access paths produce statistically identical results;
* the client's automatic environment detection picks the right path;
* the HPC path has lower per-job client overhead than the REST path
  (serialization + queue polling), which is why the tight loop exists.
"""

import time

import pytest

from benchmarks.conftest import report
from repro.middleware import MQSSClient, RestServer
from repro.middleware.adapters import (
    QiskitLikeAdapter,
    QiskitLikeCircuit,
    QuantumRegister,
    make_kernel,
    qnode,
    qpi_apply,
    qpi_create,
    qpi_finalize,
    qpi_measure_all,
)
from repro.middleware.adapters.pennylane_like import CNOT, Hadamard
from repro.qpu import QPUDevice
from repro.scheduler import QuantumResourceManager

SHOTS = 3000
N = 4


def build_programs():
    """The same GHZ-4 through four different front-end surfaces."""
    kernel, q = make_kernel(N, "ghz")
    kernel.h(q[0])
    for i in range(N - 1):
        kernel.cx(q[i], q[i + 1])
    kernel.mz()

    @qnode(num_wires=N)
    def penny():
        Hadamard(wires=0)
        for i in range(N - 1):
            CNOT(wires=[i, i + 1])

    qr = QuantumRegister(N)
    qk = QiskitLikeCircuit(qr, name="ghz")
    qk.h(qr[0])
    for i in range(N - 1):
        qk.cx(qr[i], qr[i + 1])
    qk.measure_all()

    h = qpi_create(N, "ghz")
    qpi_apply(h, "H", [0])
    for i in range(N - 1):
        qpi_apply(h, "CNOT", [i, i + 1])
    qpi_measure_all(h)

    return {
        "cudaq": kernel.module,
        "pennylane": penny(),
        "qiskit": QiskitLikeAdapter.translate(qk),
        "qpi": qpi_finalize(h),
    }


def test_fig2_mqss_stack(benchmark):
    device = QPUDevice(seed=271)
    qrm = QuantumResourceManager(device)
    programs = build_programs()

    def run_all():
        results = {}
        hpc = MQSSClient(qrm, context="hpc")
        for name, program in programs.items():
            t0 = time.perf_counter()
            record = hpc.run_detailed(program, shots=SHOTS)
            results[f"{name}/hpc"] = (record, time.perf_counter() - t0)
        remote = MQSSClient(qrm, context="remote")
        record = remote.run_detailed(programs["qiskit"], shots=SHOTS)
        results["qiskit/rest"] = (record, 0.0)
        return results

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    lines = [
        f"{'path':18s} {'route':6s} {'GHZ fid':>8s} {'QPU time':>10s}",
    ]
    reference = results["cudaq/hpc"][0].counts
    for key, (record, _wall) in results.items():
        fid = record.counts.marginal(list(range(N))).ghz_fidelity_estimate()
        lines.append(
            f"{key:18s} {record.path:6s} {fid:8.3f} {record.duration:9.3f}s"
        )
    # adapter agreement
    lines.append("")
    lines.append("pairwise total-variation distance to cudaq/hpc:")
    for key, (record, _) in results.items():
        tvd = reference.total_variation_distance(record.counts)
        lines.append(f"  {key:18s} {tvd:.3f}")
        assert tvd < 0.06, f"{key} disagrees with reference"
    # environment auto-detection
    auto_hpc = MQSSClient(qrm, context="auto", env={"SLURM_JOB_ID": "1"})
    auto_remote = MQSSClient(qrm, context="auto", env={})
    lines.append("")
    lines.append(
        f"auto-routing: SLURM env → {auto_hpc.context!r}, bare env → {auto_remote.context!r}"
    )
    assert auto_hpc.context == "hpc" and auto_remote.context == "remote"
    report("fig2_mqss_stack", "\n".join(lines))


def test_fig2_jit_cache_amortizes(benchmark, device20):
    """Same program twice: the second compile is a cache hit — the QRM's
    JIT layer at work (Figure 2's 'JIT LLVM-based compiler')."""
    qrm = QuantumResourceManager(device20)
    client = MQSSClient(qrm, context="hpc")
    programs = build_programs()

    def run_twice():
        client.run(programs["cudaq"], shots=64)
        client.run(programs["cudaq"], shots=64)
        return qrm.jit.cache_info()

    info = benchmark.pedantic(run_twice, rounds=1, iterations=1)
    assert info["hits"] >= 1
