"""Section 2.4 — network bandwidth of quantum job output.

Paper numbers: continuous measurement with a 300 µs passive reset, 20
qubits, and an 8-bits-per-bit format gives

    1/300 µs × 20 × 8 bit = 533 kbit/s,

"well below the transmission rate offered by the 1 Gbit Ethernet
connection"; scaling to 54 and 150 qubits "shows that the data rate
grows linearly"; and "in practice, the control software has additional
inefficiency … further reducing the network bandwidth needs."

The bench reproduces the analytic table, the format comparison
(bitstrings vs histogram vs raw IQ), and the *measured* rate from
actually-executed jobs — which must land below the analytic bound.
"""

import pytest

from benchmarks.conftest import report
from repro.circuits import ghz_circuit
from repro.facility.network import (
    ETHERNET_LINK,
    compare_formats,
    continuous_data_rate,
    measured_data_rate,
    scaling_table,
)
from repro.transpiler import transpile


def test_sec24_analytic_rates(benchmark):
    rows = benchmark.pedantic(scaling_table, rounds=1, iterations=1)
    lines = [f"{'qubits':>7s} {'data rate':>12s} {'of 1 GbE':>9s}"]
    for r in rows:
        lines.append(
            f"{r['num_qubits']:>7.0f} {r['data_rate_kbit_s']:>8.0f} kb/s "
            f"{r['link_utilization_pct']:>8.4f}%"
        )
    report("sec24_bandwidth_analytic", "\n".join(lines))

    # the paper's headline: 533 kbit/s at 20 qubits
    assert rows[0]["data_rate_kbit_s"] == pytest.approx(533.3, rel=1e-3)
    # linear scaling
    assert rows[1]["data_rate_kbit_s"] == pytest.approx(533.3 * 54 / 20, rel=1e-3)
    assert rows[2]["data_rate_kbit_s"] == pytest.approx(533.3 * 150 / 20, rel=1e-3)
    # everything far below the link
    assert all(r["link_utilization_pct"] < 0.5 for r in rows)


def test_sec24_measured_vs_analytic(benchmark, device20):
    """Executed jobs: measured output bandwidth < continuous bound."""
    qc = transpile(
        ghz_circuit(20), device20.topology, snapshot=device20.calibration(),
        layout_method="line",
    ).circuit

    def run_jobs():
        return [device20.execute(qc, shots=512) for _ in range(3)]

    results = benchmark.pedantic(run_jobs, rounds=1, iterations=1)
    measured = measured_data_rate(results)
    analytic = continuous_data_rate(20)
    fmt = compare_formats(results[0])
    lines = [
        f"analytic continuous bound : {analytic / 1e3:8.1f} kbit/s",
        f"measured from executed jobs: {measured / 1e3:8.1f} kbit/s "
        f"({measured / analytic * 100:.0f}% of bound — control-software overhead)",
        "",
        "output formats for one 512-shot, 20-qubit job:",
        f"  bitstrings (8 bit/bit): {fmt.bitstrings_bytes:8d} B",
        f"  histogram             : {fmt.histogram_bytes:8d} B "
        f"({fmt.histogram_saving:.1f}× smaller)",
        f"  raw IQ (pulse-level)  : {fmt.raw_iq_bytes:8d} B",
    ]
    report("sec24_bandwidth_measured", "\n".join(lines))

    assert 0 < measured < analytic
    # GHZ output concentrates on few bitstrings → histograms compress
    assert fmt.histogram_bytes < fmt.bitstrings_bytes
    # raw IQ is the heavyweight format
    assert fmt.raw_iq_bytes > fmt.bitstrings_bytes
