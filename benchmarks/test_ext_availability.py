"""Extension experiment — availability over an operations quarter.

Combines Figure 4's horizon with Section 3.5's outages: the same
90-day operations run is hit by three cooling faults, under a redundant
and a bare facility.  The headline number is the paper's lesson 3 in
availability terms: redundancy converts multi-day recoveries into zero
downtime, keeping the quarter's availability at ~100 % instead of
losing a week per fault.
"""

import pytest

from benchmarks.conftest import report
from repro.facility import FacilityConfig, OutageScenario, OutageType
from repro.ops import OperationsConfig, OperationsSimulator
from repro.qpu import QPUDevice
from repro.utils.units import HOUR, MINUTE

DAYS = 90
OUTAGES = {
    20: OutageScenario(OutageType.COOLING_WATER_OVERTEMP, 30 * MINUTE),
    45: OutageScenario(OutageType.POWER_LOSS, 2 * HOUR),
    70: OutageScenario(OutageType.COOLING_PUMP_FAILURE, 90.0),
}


def run_quarter(redundant: bool):
    cfg = OperationsConfig(
        duration_days=DAYS,
        outages=dict(OUTAGES),
        facility=FacilityConfig(
            ups_present=redundant, redundant_cooling=redundant
        ),
    )
    return OperationsSimulator(QPUDevice(seed=909), cfg).run()


def test_ext_availability(benchmark):
    results = benchmark.pedantic(
        lambda: {"redundant": run_quarter(True), "bare": run_quarter(False)},
        rounds=1,
        iterations=1,
    )
    lines = [
        f"{'facility':>10s} {'availability':>13s} {'downtime':>10s} "
        f"{'faults absorbed':>16s} {'mean CZ':>8s}"
    ]
    for name, res in results.items():
        downtime_h = (1.0 - res.online_fraction) * DAYS * 24.0
        absorbed = sum(
            1 for _, r in res.outage_reports if r.absorbed_by_redundancy
        )
        lines.append(
            f"{name:>10s} {res.online_fraction:>12.2%} {downtime_h:>9.1f}h "
            f"{absorbed:>8d}/{len(res.outage_reports):<7d} "
            f"{res.summary()['mean_cz_fidelity']:>8.4f}"
        )
    lines.append("")
    lines.append(
        "lesson 3 in availability terms: the redundant facility absorbs the "
        "water and pump faults outright and halves the quarter's downtime; "
        "the 2 h grid outage exceeds the 30 min UPS bridge and still costs "
        "a cooldown — sizing the UPS is part of the lesson."
    )
    report("ext_availability", "\n".join(lines))

    red, bare = results["redundant"], results["bare"]
    # redundancy absorbs the two cooling-path faults …
    absorbed = {day: r.absorbed_by_redundancy for day, r in red.outage_reports}
    assert absorbed[20] and absorbed[70]
    # … but a grid outage longer than the UPS bridge still hurts
    assert not absorbed[45]
    # net effect: redundancy roughly halves quarterly downtime
    assert red.online_fraction > bare.online_fraction
    downtime_red = 1.0 - red.online_fraction
    downtime_bare = 1.0 - bare.online_fraction
    assert downtime_red < 0.65 * downtime_bare
    # the 90 s pump blip stays under 1 K even for the bare facility
    blip = dict(bare.outage_reports)[70]
    assert blip.calibration_survived
