"""Section 2.3 — cooling water and ambient-temperature stability.

Paper numbers: HPC racks accept cooling water up to 45 °C; the cryostat
needs 15–25 °C; ambient stability ΔT < 1 °C per 24 h keeps readout-chain
phase delays (and hence calibration) stable — "a value that was
achievable in practice".
"""

import numpy as np
import pytest

from benchmarks.conftest import report
from repro.facility.cooling import (
    ReadoutPhaseModel,
    ambient_stability_ok,
    cooling_envelope_table,
    readout_error_vs_ambient,
)
from repro.facility.sensors import SiteProfile, temperature
from repro.utils.units import HOUR


def test_sec23_cooling_envelopes(benchmark):
    table = benchmark.pedantic(cooling_envelope_table, rounds=1, iterations=1)
    lines = [f"{'loop':20s} {'supply':>8s} {'QPU ok':>7s} {'rack ok':>8s}"]
    for row in table:
        lines.append(
            f"{row['loop']:20s} {row['supply_temp_c']:6.0f} °C "
            f"{str(row['qpu_ok']):>7s} {str(row['hpc_rack_ok']):>8s}"
        )
    lines.append("")
    rows2 = readout_error_vs_ambient()
    lines.append(f"{'ΔT ambient':>11s} {'phase offset':>13s} {'added RO error':>15s}")
    for r in rows2:
        lines.append(
            f"{r['delta_t_c']:>9.1f} °C {r['phase_offset_mrad']:>9.1f} mrad "
            f"{r['added_readout_error']:>15.5f}"
        )
    report("sec23_cooling", "\n".join(lines))

    by_loop = {r["loop"]: r for r in table}
    # the Section 2.3 contrast: warm-water racks vs 15-25 °C cryostat loop
    assert by_loop["warm-water loop"]["hpc_rack_ok"]
    assert not by_loop["warm-water loop"]["qpu_ok"]
    assert by_loop["chilled loop"]["qpu_ok"]
    # inside the ΔT<1 °C limit the readout penalty is negligible,
    # beyond it it grows quadratically
    errors = {r["delta_t_c"]: r["added_readout_error"] for r in rows2}
    assert errors[1.0] < 2e-3
    assert errors[4.0] > 10 * errors[1.0]


def test_sec23_site_hvac_meets_limit(benchmark):
    """A survey-passing room's temperature trace satisfies ΔT < 1 °C/24 h."""
    profile = SiteProfile("stable-room", temperature_stability=0.25)

    def check():
        trace = temperature(profile, 72 * HOUR, rng=3)
        return ambient_stability_ok(trace.data, sample_period=60.0)

    assert benchmark.pedantic(check, rounds=1, iterations=1)
