"""Section 3.5 — recovering from outages.

Paper numbers reproduced:

* "it takes two minutes to exceed [1 K] after a fault in the cooling
  system";
* excursions below 1 K: "calibration can often be restored by the
  automated calibration system" — hours, not days;
* above 1 K: full recalibration plus "a process that can take from two
  to five days" of cryostat cooldown;
* "the vacuum integrity of the system is typically maintained during
  outages for several weeks";
* lesson 3: redundant power (UPS) and cooling water eliminate the
  downtime entirely for utility-scale faults.
"""

import pytest

from benchmarks.conftest import report
from repro.facility import (
    FacilityConfig,
    OutageScenario,
    OutageType,
    simulate_outage,
    warmup_temperature,
)
from repro.facility.cryostat import TIME_TO_EXCEED_1K, cooldown_duration
from repro.utils.units import DAY, HOUR, MINUTE

FAULTS = [60.0, 5 * MINUTE, 45 * MINUTE, 6 * HOUR, 2 * DAY]


def sweep():
    rows = []
    for fault in FAULTS:
        for label, config in (
            ("redundant", FacilityConfig(ups_present=True, redundant_cooling=True)),
            ("bare", FacilityConfig(ups_present=False, redundant_cooling=False)),
        ):
            rep = simulate_outage(
                OutageScenario(OutageType.COOLING_WATER_OVERTEMP, fault), config
            )
            rows.append((fault, label, rep))
    return rows


def test_sec35_outage_recovery(benchmark):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = [
        f"{'fault':>10s} {'facility':>10s} {'peak T':>10s} {'cal ok':>7s} "
        f"{'vacuum':>7s} {'downtime':>12s}"
    ]
    for fault, label, rep in rows:
        lines.append(
            f"{fault / MINUTE:>7.1f}min {label:>10s} {rep.peak_temperature:>8.3g} K "
            f"{str(rep.calibration_survived):>7s} {str(rep.vacuum_intact):>7s} "
            f"{rep.total_downtime / HOUR:>10.1f} h"
        )
    lines.append("")
    lines.append(
        f"warm-up physics: T(2 min) = {warmup_temperature(TIME_TO_EXCEED_1K):.2f} K; "
        f"cooldown from 300 K = {cooldown_duration(300.0) / DAY:.1f} d, "
        f"from 4 K = {cooldown_duration(4.0) / DAY:.1f} d"
    )
    report("sec35_outage_recovery", "\n".join(lines))

    by_key = {(f, l): r for f, l, r in rows}
    # redundancy absorbs every water fault
    for fault in FAULTS:
        assert by_key[(fault, "redundant")].total_downtime == 0.0
    # 60 s bare fault: stays below 1 K (2-minute horizon) → hours of downtime
    short = by_key[(60.0, "bare")]
    assert short.calibration_survived
    assert short.total_downtime < 6 * HOUR
    # 45 min bare fault: above 1 K → full recal + multi-day cooldown
    long = by_key[(45 * MINUTE, "bare")]
    assert not long.calibration_survived
    assert 2 * DAY < long.total_downtime < 6 * DAY
    # even a 2-day outage leaves the vacuum intact (weeks of hold time)
    assert by_key[(2 * DAY, "bare")].vacuum_intact
    # downtime is monotone in fault duration for the bare facility
    bare_downtimes = [by_key[(f, "bare")].total_downtime for f in FAULTS]
    assert bare_downtimes == sorted(bare_downtimes)
