"""Figure 4 — autonomous calibration performance over 146 days.

Paper artifact: Figure 4 plots single-qubit gate fidelity, readout
fidelity and CZ (two-qubit gate) fidelity over 146 days of unattended
operation, "showing consistent … fidelity over time" with "more than
100 days of continuous operation without human intervention".

The bench runs the full 146-day operations simulation (drift + TLS
events + DCDB telemetry + advisor-driven quick/full calibration inside
nightly scheduler windows) and reports the three daily-median series.

Expected shape:
* all three fidelity series stay inside a flat band for 146 days;
* ordering 1q > CZ and 1q > readout (as in the paper's panel scales);
* zero human interventions; > 100 unattended days;
* a drift-without-calibration control run degrades markedly.
"""

import numpy as np
import pytest

from benchmarks.conftest import report
from repro.ops import OperationsConfig, OperationsSimulator
from repro.qpu import QPUDevice

DAYS = 146


def run_operations(calibration_windows: str):
    device = QPUDevice(seed=146)
    cfg = OperationsConfig(duration_days=DAYS, calibration_windows=calibration_windows)
    return OperationsSimulator(device, cfg).run()


def test_fig4_calibration_146d(benchmark):
    result = benchmark.pedantic(
        lambda: run_operations("nightly"), rounds=1, iterations=1
    )
    control = run_operations("none")

    series = result.fig4_series()
    lines = [
        f"{'day':>5} {'1q gate':>9} {'readout':>9} {'CZ':>9} {'cal q/f':>8} {'TLS':>4}"
    ]
    for d in result.days:
        if d.day % 14 == 0 or d.day == DAYS - 1:
            lines.append(
                f"{d.day:>5} {d.median_prx_fidelity:>9.5f} "
                f"{d.median_readout_fidelity:>9.5f} {d.median_cz_fidelity:>9.5f} "
                f"{d.calibrations_quick:>3}/{d.calibrations_full:<3} {d.tls_active:>4}"
            )
    summary = result.summary()
    lines.append("")
    for key, value in summary.items():
        lines.append(f"  {key:28s} {value:.4f}")
    lines.append("")
    lines.append(
        "control (no calibration windows): "
        f"mean CZ {control.summary()['mean_cz_fidelity']:.4f} vs managed "
        f"{summary['mean_cz_fidelity']:.4f}; "
        f"min CZ {control.summary()['min_cz_fidelity']:.4f} vs "
        f"{summary['min_cz_fidelity']:.4f}"
    )
    report("fig4_calibration_146d", "\n".join(lines))

    # --- the Figure 4 claims -----------------------------------------------
    assert len(result.days) == DAYS
    assert result.human_interventions == 0
    assert result.unattended_days() > 100          # "more than 100 days"
    # consistent bands over the whole run
    assert series["prx_fidelity"].min() > 0.995
    assert series["cz_fidelity"].min() > 0.95
    assert series["readout_fidelity"].min() > 0.90
    # ordering as in the paper's panels
    assert summary["mean_prx_fidelity"] > summary["mean_cz_fidelity"]
    assert summary["mean_prx_fidelity"] > summary["mean_readout_fidelity"]
    # calibration is doing real work: the unmanaged control is worse
    assert control.summary()["min_cz_fidelity"] < summary["min_cz_fidelity"]
    assert summary["quick_calibrations"] + summary["full_calibrations"] > 20
