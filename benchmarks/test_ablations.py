"""Ablations of the design choices DESIGN.md calls out.

1. **Scheduler-controlled vs fixed-period calibration** (lesson 2): the
   advisor-driven policy should spend *less* time calibrating while
   holding a comparable fidelity floor.
2. **Backfill vs FIFO** around calibration reservations: backfill keeps
   classical utilization higher when reservations fragment the schedule.
3. **Quick-calibration availability economics**: for a 1q-drift-dominated
   workload, preferring quick slots buys more online time per fidelity
   point than always-full.
"""

import pytest

from benchmarks.conftest import report
from repro.ops import OperationsConfig, OperationsSimulator
from repro.qpu import QPUDevice
from repro.scheduler import ClusterScheduler, Job, Partition, Reservation, Simulation
from repro.utils.units import DAY, HOUR, MINUTE

DAYS = 45


def run_policy(policy: str, fixed_period: float = 24 * HOUR):
    device = QPUDevice(seed=77)
    cfg = OperationsConfig(
        duration_days=DAYS,
        policy=policy,
        fixed_period=fixed_period,
        calibration_windows="always",
    )
    return OperationsSimulator(device, cfg).run()


def test_ablation_calibration_policy(benchmark):
    results = benchmark.pedantic(
        lambda: {
            "scheduler_controlled": run_policy("scheduler_controlled"),
            "fixed_24h": run_policy("fixed_period", 24 * HOUR),
            "fixed_12h": run_policy("fixed_period", 12 * HOUR),
        },
        rounds=1,
        iterations=1,
    )
    lines = [
        f"{'policy':>22s} {'quick':>6s} {'full':>6s} {'cal hours':>10s} "
        f"{'mean CZ':>8s} {'min CZ':>8s}"
    ]
    stats = {}
    for name, res in results.items():
        s = res.summary()
        cal_hours = sum(e.duration for e in res.calibration_events) / HOUR
        stats[name] = (cal_hours, s)
        lines.append(
            f"{name:>22s} {s['quick_calibrations']:>6.0f} "
            f"{s['full_calibrations']:>6.0f} {cal_hours:>9.1f}h "
            f"{s['mean_cz_fidelity']:>8.4f} {s['min_cz_fidelity']:>8.4f}"
        )
    lines.append("")
    lines.append(
        "lesson 2: telemetry-driven, scheduler-controlled calibration uses "
        "fewer QPU-hours than a fixed cadence at a comparable fidelity floor."
    )
    report("ablation_calibration_policy", "\n".join(lines))

    sc_hours, sc = stats["scheduler_controlled"]
    f12_hours, f12 = stats["fixed_12h"]
    # advisor spends less time than the aggressive fixed cadence…
    assert sc_hours < f12_hours
    # …at a comparable fidelity band (within half a point of CZ fidelity)
    assert sc["mean_cz_fidelity"] > f12["mean_cz_fidelity"] - 0.005


def test_ablation_backfill_vs_fifo(benchmark):
    """Classical throughput around daily calibration reservations."""

    def run_cluster(backfill: bool) -> float:
        sim = Simulation()
        cluster = ClusterScheduler(
            sim, [Partition("compute", 16)], backfill=backfill
        )
        # daily 2 h maintenance reservations fragment the schedule
        for day in range(3):
            cluster.reserve(
                Reservation("compute", day * DAY + 10 * HOUR, day * DAY + 12 * HOUR, 16)
            )
        # a mix of wide and narrow jobs
        for i in range(40):
            wide = i % 4 == 0
            cluster.submit(
                Job(
                    name=f"j{i}",
                    num_nodes=12 if wide else 2,
                    runtime=3 * HOUR if wide else 45 * MINUTE,
                    walltime_limit=4 * HOUR if wide else 1 * HOUR,
                    priority=5 if wide else 0,
                )
            )
        sim.run_until(3 * DAY)
        return cluster.utilization("compute", 3 * DAY), cluster.mean_wait_time()

    outcomes = benchmark.pedantic(
        lambda: {"backfill": run_cluster(True), "fifo": run_cluster(False)},
        rounds=1,
        iterations=1,
    )
    lines = [f"{'policy':>10s} {'utilization':>12s} {'mean wait':>12s}"]
    for name, (util, wait) in outcomes.items():
        lines.append(f"{name:>10s} {util:>11.1%} {wait / MINUTE:>9.1f}min")
    report("ablation_backfill", "\n".join(lines))
    assert outcomes["backfill"][0] >= outcomes["fifo"][0]


def test_ablation_quick_vs_full_only(benchmark):
    """Restrict the advisor to full-only calibrations and compare QPU
    hours lost to calibration (the quick path exists for a reason)."""
    from repro.calibration import CalibrationController
    from repro.telemetry import DCDBCollector, MetricStore, QPUMetricsPlugin
    from repro.telemetry.analytics import RecalibrationAdvisor

    class FullOnlyAdvisor(RecalibrationAdvisor):
        def advise(self, store):
            advice = super().advise(store)
            if advice.action == "quick":
                from repro.telemetry.analytics import RecalibrationAdvice

                return RecalibrationAdvice("full", advice.reason + " (forced full)")
            return advice

    def run(advisor) -> float:
        device = QPUDevice(seed=55)
        store = MetricStore()
        collector = DCDBCollector(store, [QPUMetricsPlugin(device, per_qubit=False)])
        ctrl = CalibrationController(device, advisor=advisor)
        for _ in range(30 * 12):
            device.advance_time(2 * HOUR)
            collector.run_cycle(device.time)
            ctrl.step(store)
        return ctrl.stats.total_calibration_time / HOUR

    hours = benchmark.pedantic(
        lambda: {
            "quick+full": run(RecalibrationAdvisor()),
            "full-only": run(FullOnlyAdvisor()),
        },
        rounds=1,
        iterations=1,
    )
    lines = [f"{k:>12s}: {v:6.1f} calibration hours / 30 days" for k, v in hours.items()]
    report("ablation_quick_vs_fullonly", "\n".join(lines))
    assert hours["quick+full"] <= hours["full-only"]
